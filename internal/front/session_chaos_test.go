package front_test

// Session tests of the front tier: sticky session routing, transcript
// capture, and the chaos e2e where a backend holding live sessions is killed
// mid-run — the front must rebuild the lost sessions on surviving backends by
// replaying their transcripts, with zero client-visible errors and plans
// cost-equivalent to cold solves of the same traces.

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"pfcache/internal/lp"
	"pfcache/internal/service"
)

// frontSessionWire mirrors service.SessionResponse with the plan kept raw.
type frontSessionWire struct {
	Session string          `json:"session"`
	Length  int             `json:"length"`
	Rebuilt bool            `json:"rebuilt"`
	Result  json.RawMessage `json:"result"`
}

// sessionCosts are the fields of a served plan that the LP certifies.
type sessionCosts struct {
	Stall int `json:"stall"`
	LP    struct {
		LowerBound float64 `json:"lower_bound"`
	} `json:"lp"`
}

// checkSessionCosts compares a session plan against the cold one-shot solve
// of the same full trace: same stall, same LP bound (to float tolerance).
// Vertex-dependent schedule detail is not compared — see the service session
// tests for why equal-cost optima may differ fetch by fetch.
func checkSessionCosts(t *testing.T, context string, result json.RawMessage, seq []int, k, f, disks int) {
	t.Helper()
	ref, err := service.ScheduleBody(&service.ScheduleRequest{
		Strategy: "lp-optimal", Seq: seq, K: k, F: f, Disks: disks,
	}, lp.Options{})
	if err != nil {
		t.Fatalf("%s: cold reference: %v", context, err)
	}
	var got, want sessionCosts
	if err := json.Unmarshal(result, &got); err != nil {
		t.Fatalf("%s: decoding session plan: %v", context, err)
	}
	if err := json.Unmarshal(ref, &want); err != nil {
		t.Fatalf("%s: decoding cold reference: %v", context, err)
	}
	if got.Stall != want.Stall {
		t.Errorf("%s: stall = %d, cold solve of the same trace has %d", context, got.Stall, want.Stall)
	}
	if diff := math.Abs(got.LP.LowerBound - want.LP.LowerBound); diff > 1e-6*(1+math.Abs(want.LP.LowerBound)) {
		t.Errorf("%s: lp.lower_bound = %v, cold solve has %v", context, got.LP.LowerBound, want.LP.LowerBound)
	}
}

// TestFrontSessionSticky drives a session through a single-backend front:
// the front pins a session ID, every operation reaches the backend, and the
// transcript counters advance.
func TestFrontSessionSticky(t *testing.T) {
	backend := newBackend(t)
	f, fs := newFront(t, []string{backend.URL}, nil)

	seq := []int{0, 1, 2, 3, 0, 1, 2, 3, 4, 0, 1, 2}
	const k, fdist, disks = 3, 3, 1
	resp, body := postJSON(t, fs.URL+"/v1/session", mustMarshal(t, &service.SessionCreateRequest{
		ScheduleRequest: service.ScheduleRequest{
			Strategy: "lp-optimal", Seq: seq, K: k, F: fdist, Disks: disks,
		},
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sess frontSessionWire
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}
	if sess.Session == "" {
		t.Fatal("front did not pin a session ID")
	}
	if resp.Header.Get("X-Backend") != backend.URL {
		t.Errorf("create served by %q, want %q", resp.Header.Get("X-Backend"), backend.URL)
	}

	for step := 0; step < 3; step++ {
		ext := []int{step % 5, (step + 2) % 5}
		seq = append(seq, ext...)
		resp, body := postJSON(t, fs.URL+"/v1/session/"+sess.Session+"/extend",
			mustMarshal(t, &service.SessionExtendRequest{Requests: ext}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extend %d: status %d: %s", step, resp.StatusCode, body)
		}
		var out frontSessionWire
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Length != len(seq) {
			t.Fatalf("extend %d: length %d, want %d", step, out.Length, len(seq))
		}
		checkSessionCosts(t, "extend", out.Result, seq, k, fdist, disks)
	}

	stats := f.Stats(t.Context())
	if stats.SessionCreates != 1 || stats.SessionsTracked != 1 {
		t.Errorf("front session counters: creates=%d tracked=%d, want 1/1",
			stats.SessionCreates, stats.SessionsTracked)
	}
	if stats.SessionReplays != 0 {
		t.Errorf("session_replays = %d without any backend loss", stats.SessionReplays)
	}

	req, err := http.NewRequest(http.MethodDelete, fs.URL+"/v1/session/"+sess.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var closed struct {
		Closed bool `json:"closed"`
	}
	err = json.NewDecoder(dresp.Body).Decode(&closed)
	dresp.Body.Close()
	if err != nil || dresp.StatusCode != http.StatusOK || !closed.Closed {
		t.Fatalf("close: status %d closed=%v err=%v", dresp.StatusCode, closed.Closed, err)
	}
	if st := f.Stats(t.Context()); st.SessionsTracked != 0 {
		t.Errorf("closed session still tracked (%d)", st.SessionsTracked)
	}
}

// frontSession is one live session driven by the chaos test.
type frontSession struct {
	id   string
	seq  []int
	home string // proxy URL of the backend that served the last operation
}

// TestChaosSessionFailoverMidRun is the session e2e: live sessions spread
// over three backends, then the backend holding some of them is killed.
// Every subsequent extension must succeed — the front replays the lost
// sessions' transcripts onto survivors — and every served plan must stay
// cost-equivalent to the cold solve of its full trace.
func TestChaosSessionFailoverMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	fl := startChaosFleet(t, nil)
	const k, fdist, disks = 3, 3, 1
	rng := rand.New(rand.NewSource(7))

	extend := func(s *frontSession, blocks []int) (*http.Response, *frontSessionWire, []byte) {
		resp, body := postJSON(t, fl.url+"/v1/session/"+s.id+"/extend",
			mustMarshal(t, &service.SessionExtendRequest{Requests: blocks}))
		if resp.StatusCode != http.StatusOK {
			return resp, nil, body
		}
		var out frontSessionWire
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decoding extend response: %v", err)
		}
		s.seq = append(s.seq, blocks...)
		s.home = resp.Header.Get("X-Backend")
		return resp, &out, body
	}

	// Open sessions until every backend is home to at least one, so the kill
	// below is guaranteed to orphan some sessions and spare others.
	var sessions []*frontSession
	homes := map[string]int{}
	for len(homes) < 3 && len(sessions) < 24 {
		seq := make([]int, 14)
		for i := range seq {
			seq[i] = rng.Intn(6)
		}
		resp, body := postJSON(t, fl.url+"/v1/session", mustMarshal(t, &service.SessionCreateRequest{
			ScheduleRequest: service.ScheduleRequest{
				Strategy: "lp-optimal", Seq: seq, K: k, F: fdist, Disks: disks,
			},
		}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %d: status %d: %s", len(sessions), resp.StatusCode, body)
		}
		var out frontSessionWire
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		s := &frontSession{id: out.Session, seq: seq, home: resp.Header.Get("X-Backend")}
		sessions = append(sessions, s)
		homes[s.home]++
	}
	if len(homes) < 3 {
		t.Fatalf("sessions never spread over all 3 backends: %v", homes)
	}

	// A warm round before the kill: everyone extends in place.
	for i, s := range sessions {
		blocks := []int{rng.Intn(6), rng.Intn(6)}
		resp, out, body := extend(s, blocks)
		if out == nil {
			t.Fatalf("pre-kill extend %d: status %d: %s", i, resp.StatusCode, body)
		}
		checkSessionCosts(t, "pre-kill extend", out.Result, s.seq, k, fdist, disks)
	}

	// Kill the backend homing session 0; note the orphan count.
	victimURL := sessions[0].home
	victim := -1
	for i, p := range fl.proxies {
		if p.URL() == victimURL {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("no proxy matches home %q", victimURL)
	}
	orphans := 0
	for _, s := range sessions {
		if s.home == victimURL {
			orphans++
		}
	}
	fl.backends[victim].kill()
	t.Logf("killed backend %d (%s), orphaning %d/%d sessions", victim, victimURL, orphans, len(sessions))

	// Two post-kill rounds: every extension must succeed, the orphans coming
	// back via transcript replay onto survivors.
	replayed := 0
	for round := 0; round < 2; round++ {
		for i, s := range sessions {
			blocks := []int{rng.Intn(6)}
			resp, out, body := extend(s, blocks)
			if out == nil {
				t.Fatalf("post-kill round %d extend %d: status %d: %s", round, i, resp.StatusCode, body)
			}
			if resp.Header.Get("X-Front-Replayed") != "" {
				replayed++
			}
			if s.home == victimURL {
				t.Errorf("round %d session %d still served by the dead backend", round, i)
			}
			checkSessionCosts(t, "post-kill extend", out.Result, s.seq, k, fdist, disks)
		}
	}
	if replayed < orphans {
		t.Errorf("only %d extends were served via replay, want at least the %d orphans", replayed, orphans)
	}
	stats := fl.front.Stats(t.Context())
	if stats.SessionReplays < uint64(orphans) {
		t.Errorf("front counted %d session replays, want >= %d", stats.SessionReplays, orphans)
	}
	if stats.SessionCreates != uint64(len(sessions)) {
		t.Errorf("front counted %d session creates, want %d", stats.SessionCreates, len(sessions))
	}
}
