package front_test

// Numeric-chaos e2e: the same three-backend fleet as the network chaos
// tests, but the faults live inside the solver rather than on the wire.  A
// NumericInjector corrupts factorizations, reported objectives and
// refactorizations across every in-process backend (the lp fault hook is
// process-global); the invariant is the PR's tentpole guarantee extended
// downward: clients see zero errors and byte-identical bodies even when the
// arithmetic itself lies, because every served solve carries a verified
// certificate and damaged solves are re-run down the engine cascade.

import (
	"bytes"
	"net/http"
	"testing"

	"pfcache/internal/faultinject"
	"pfcache/internal/front"
	"pfcache/internal/lp"
	"pfcache/internal/service"
)

// numericChaosRequests mirrors chaosRequests but skews heavily toward
// lp-optimal: numeric faults can only bite solves, so the replay needs many
// distinct LP shapes (distinct n, so warm bases never carry between them).
func numericChaosRequests(t *testing.T) (reqs [][]byte, refs [][]byte) {
	t.Helper()
	set := []*service.ScheduleRequest{
		zipfSchedule("lp-optimal", 30, 21),
		zipfSchedule("lp-optimal", 28, 22),
		zipfSchedule("lp-optimal", 26, 23),
		zipfSchedule("lp-optimal", 24, 24),
		zipfSchedule("lp-optimal", 22, 25),
		zipfSchedule("lp-optimal", 20, 26),
		zipfSchedule("lp-optimal", 18, 27),
		zipfSchedule("lp-optimal", 16, 28),
		zipfSchedule("lp-optimal", 14, 29),
		zipfSchedule("aggressive", 40, 30),
		zipfSchedule("demand-lru", 36, 31),
		zipfSchedule("opt", 12, 32),
	}
	for i, r := range set {
		// References must be computed before any injector installs: the lp
		// fault hook is process-global and would corrupt these solves too.
		want, err := service.ScheduleBody(r, lp.Options{WarmStart: true})
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		reqs = append(reqs, mustMarshal(t, r))
		refs = append(refs, want)
	}
	return reqs, refs
}

// fleetSolverResets sums solver_resets across the fleet's live backends.
func fleetSolverResets(fl *chaosFleet) uint64 {
	var total uint64
	for _, b := range fl.backends {
		b.mu.Lock()
		svc := b.svc
		b.mu.Unlock()
		if svc != nil {
			total += svc.Stats().SolverResets
		}
	}
	return total
}

// TestChaosNumericFaultsInvisible floods every backend's solver with numeric
// faults — every second top-level solve is corrupted, far past the ISSUE's
// 1%-of-solves floor — and requires every client response to stay 200 and
// byte-identical to the clean references, with the damage visible only in
// the counters: verify_failures and cascade_fallbacks must rise, and at
// least one tainted shard solver must have been discarded.
func TestChaosNumericFaultsInvisible(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	fl := startChaosFleet(t, nil)
	reqs, refs := numericChaosRequests(t)

	before := lp.StatsSnapshot()
	inj := faultinject.NewNumericInjector(2)
	inj.Install()
	defer inj.Uninstall()

	replay(t, fl.url, reqs, refs, 6, 10, nil)
	inj.Uninstall()

	faulted := inj.Miscomputes.Load() + inj.Corruptions.Load() + inj.Singulars.Load()
	if faulted == 0 {
		t.Fatal("no numeric faults were injected — the run proved nothing")
	}
	if inj.Miscomputes.Load() == 0 {
		t.Error("fault rotation never corrupted a reported objective")
	}
	after := lp.StatsSnapshot()
	if after.VerifyFailures == before.VerifyFailures {
		t.Error("corrupted solves left no verify_failures — certificates never caught the damage")
	}
	if after.CascadeFallbacks == before.CascadeFallbacks {
		t.Error("corrupted solves left no cascade_fallbacks — nothing was re-solved")
	}
	if fleetSolverResets(fl) == 0 {
		t.Error("no tainted shard solver was discarded")
	}
	t.Logf("healed %d numeric faults (%d miscomputes, %d corruptions, %d singulars) invisibly: +%d verify_failures, +%d cascade_fallbacks, %d solver resets",
		faulted, inj.Miscomputes.Load(), inj.Corruptions.Load(), inj.Singulars.Load(),
		after.VerifyFailures-before.VerifyFailures,
		after.CascadeFallbacks-before.CascadeFallbacks,
		fleetSolverResets(fl))
}

// TestChaosNumericExhaustionRetried proves the unrecoverable path heals one
// tier up: a cascade exhausted on every rung surfaces from the backend as a
// typed 500, which the front treats as retryable — the client still sees a
// 200 with the clean bytes, and the only traces are a front retry and a
// backend solver reset.
func TestChaosNumericExhaustionRetried(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	fl := startChaosFleet(t, func(o *front.Options) {
		// No organic flakiness in this run: every retry the front counts must
		// come from the injected exhaustion.
		o.MaxAttempts = 4
	})
	req := zipfSchedule("lp-optimal", 34, 99)
	ref, err := service.ScheduleBody(req, lp.Options{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.NewNumericInjector(1 << 30) // cadence off: exhaustion only
	inj.Install()
	defer inj.Uninstall()
	inj.InjectExhaustion(1)

	resp, payload := postJSON(t, fl.url+"/v1/schedule", mustMarshal(t, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("client saw status %d (%.200s), want the exhaustion absorbed by a retry", resp.StatusCode, payload)
	}
	if !bytes.Equal(payload, ref) {
		t.Fatalf("retried response differs from the clean reference:\n got %s\nwant %s", payload, ref)
	}
	if inj.Exhaustions.Load() != 1 {
		t.Fatalf("exhaustion fault fired %d times, want exactly 1", inj.Exhaustions.Load())
	}
	stats := fl.front.Stats(t.Context())
	if stats.Retries == 0 {
		t.Error("front counted no retries — the typed 500 was never retried")
	}
	if fleetSolverResets(fl) == 0 {
		t.Error("the exhausted backend never reset its shard solver")
	}
}
