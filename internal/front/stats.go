package front

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// BackendStatus is one backend's entry in the aggregated /v1/stats reply.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Breaker is "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Requests and Failures count attempts this front sent to the backend.
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	// Transitions counts healthy<->unhealthy flips observed by the checker.
	Transitions uint64 `json:"transitions"`
	// Stats is the backend's own /v1/stats body (absent when the backend
	// could not be reached within the stats deadline).
	Stats json.RawMessage `json:"stats,omitempty"`
}

// StatsResponse aggregates the front tier's view of the fleet.
type StatsResponse struct {
	Backends        []BackendStatus `json:"backends"`
	HealthyBackends int             `json:"healthy_backends"`
	// Requests counts schedule requests accepted; Retries counts extra
	// attempts spent beyond each request's first; Sweeps counts fanned-out
	// sweep requests.
	Requests uint64 `json:"requests"`
	Retries  uint64 `json:"retries"`
	Sweeps   uint64 `json:"sweeps"`
	// SessionsTracked is the number of session transcripts the front holds;
	// SessionCreates counts sessions opened through this front; and
	// SessionReplays counts sessions transparently rebuilt on a backend from
	// their transcript after the original backend lost them.
	SessionsTracked int    `json:"sessions_tracked"`
	SessionCreates  uint64 `json:"session_creates"`
	SessionReplays  uint64 `json:"session_replays"`
}

// Stats snapshots the front counters and, best-effort, each healthy
// backend's own stats (bounded by a short per-backend deadline so one dead
// backend cannot stall the aggregate).
func (f *Front) Stats(ctx context.Context) StatsResponse {
	resp := StatsResponse{
		Backends:        make([]BackendStatus, len(f.backends)),
		Requests:        f.requests.Load(),
		Retries:         f.retries.Load(),
		Sweeps:          f.sweeps.Load(),
		SessionsTracked: f.transcripts.len(),
		SessionCreates:  f.sessionCreates.Load(),
		SessionReplays:  f.sessionReplays.Load(),
	}
	var wg sync.WaitGroup
	for i, b := range f.backends {
		st := BackendStatus{
			URL:         b.name,
			Healthy:     b.hc.healthy.Load(),
			Breaker:     b.br.snapshot(),
			Requests:    b.requests.Load(),
			Failures:    b.failures.Load(),
			Transitions: b.hc.transitions.Load(),
		}
		if st.Healthy {
			resp.HealthyBackends++
		}
		resp.Backends[i] = st
		if !st.Healthy {
			continue
		}
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			if raw := f.fetchBackendStats(ctx, base); raw != nil {
				resp.Backends[i].Stats = raw
			}
		}(i, b.name)
	}
	wg.Wait()
	return resp
}

// fetchBackendStats pulls one backend's /v1/stats with a short deadline
// (Options.StatsTimeout), returning nil on any failure (stats aggregation is
// best-effort: a slow or dead backend loses its Stats block, nothing more).
func (f *Front) fetchBackendStats(ctx context.Context, base string) json.RawMessage {
	sctx, cancel := context.WithTimeout(ctx, f.opts.StatsTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, "GET", base+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, body); err != nil {
		return nil
	}
	return compact.Bytes()
}
