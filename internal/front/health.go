package front

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// healthChecker actively polls one backend's readiness endpoint.  It takes
// `failThreshold` consecutive failed probes to mark the backend unhealthy
// (one dropped poll is not an outage) and `restoreThreshold` consecutive
// successes to bring it back (a backend that flaps once per poll never
// serves).  The checker only observes probe traffic; the per-backend circuit
// breaker covers failures of real requests between polls.
type healthChecker struct {
	url       string
	client    *http.Client
	interval  time.Duration
	timeout   time.Duration
	failAfter int
	okAfter   int

	healthy     atomic.Bool
	transitions atomic.Uint64 // healthy<->unhealthy flips

	consecFail int
	consecOK   int

	stop chan struct{}
	wg   sync.WaitGroup
}

func newHealthChecker(url string, client *http.Client, interval, timeout time.Duration, failAfter, okAfter int) *healthChecker {
	if interval <= 0 {
		interval = time.Second
	}
	if timeout <= 0 {
		timeout = interval
	}
	if failAfter <= 0 {
		failAfter = 3
	}
	if okAfter <= 0 {
		okAfter = 2
	}
	hc := &healthChecker{
		url:       url,
		client:    client,
		interval:  interval,
		timeout:   timeout,
		failAfter: failAfter,
		okAfter:   okAfter,
		stop:      make(chan struct{}),
	}
	// Start healthy: a fleet booting up should route traffic immediately and
	// let the first failed probes (or failed requests, via the breaker)
	// demote a backend, rather than blackhole everything until the first
	// poll round completes.
	hc.healthy.Store(true)
	return hc
}

// run polls until stopped.  It probes once immediately so tests with short
// intervals converge fast.
func (hc *healthChecker) run() {
	hc.wg.Add(1)
	go func() {
		defer hc.wg.Done()
		ticker := time.NewTicker(hc.interval)
		defer ticker.Stop()
		hc.probe()
		for {
			select {
			case <-hc.stop:
				return
			case <-ticker.C:
				hc.probe()
			}
		}
	}()
}

func (hc *healthChecker) close() {
	close(hc.stop)
	hc.wg.Wait()
}

// probe performs one readiness check and applies the thresholds.
func (hc *healthChecker) probe() {
	ok := hc.check()
	if ok {
		hc.consecOK++
		hc.consecFail = 0
		if !hc.healthy.Load() && hc.consecOK >= hc.okAfter {
			hc.healthy.Store(true)
			hc.transitions.Add(1)
		}
		return
	}
	hc.consecFail++
	hc.consecOK = 0
	if hc.healthy.Load() && hc.consecFail >= hc.failAfter {
		hc.healthy.Store(false)
		hc.transitions.Add(1)
	}
}

func (hc *healthChecker) check() bool {
	ctx, cancel := context.WithTimeout(context.Background(), hc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", hc.url, nil)
	if err != nil {
		return false
	}
	resp, err := hc.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
