package front

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over backend indices.  Each backend owns
// `replicas` virtual points; a key is served by the backend owning the first
// point clockwise of the key's hash, and retries walk further clockwise over
// the remaining *distinct* backends.  Placement depends only on the backend
// names, so every pcfront instance (and a restarted one) routes a given
// instance fingerprint to the same backend — which is what makes the
// backend-local solve caches and warm-started solvers effective across a
// fleet of fronts.
type ring struct {
	hashes   []uint64
	backends []int // backends[i] owns point hashes[i]
	n        int   // number of distinct backends
}

// newRing places replicas points per backend, named by the backend's name.
func newRing(names []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &ring{n: len(names)}
	type point struct {
		h uint64
		b int
	}
	points := make([]point, 0, len(names)*replicas)
	for b, name := range names {
		for v := 0; v < replicas; v++ {
			points = append(points, point{hashString(name + "#" + strconv.Itoa(v)), b})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		return points[i].b < points[j].b
	})
	r.hashes = make([]uint64, len(points))
	r.backends = make([]int, len(points))
	for i, p := range points {
		r.hashes[i] = p.h
		r.backends[i] = p.b
	}
	return r
}

// order returns the backend indices in ring-walk order for key: the owner
// first, then each further distinct backend as the walk continues clockwise.
// Every backend appears exactly once.
func (r *ring) order(key uint64) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	seen := make([]bool, r.n)
	for i := 0; i < len(r.hashes) && len(out) < r.n; i++ {
		b := r.backends[(start+i)%len(r.hashes)]
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// hashString is FNV-1a, the same family the service uses for shard
// selection; any stable 64-bit hash works here.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
