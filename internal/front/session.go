package front

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"pfcache/internal/service"
)

// This file is the front tier's session support.  Sessions are sticky: every
// operation for a session ID walks the ring from hashString(id), so one
// backend holds the session's warm LP model and solver.  The front records
// each session's transcript — the create body plus every accepted extend body
// — and when a backend answers 404 for a session the front knows (the backend
// was restarted, or the session was evicted or expired there), the front
// replays the transcript against a live backend and then applies the current
// extension, so clients never observe the loss: the replay rebuilds the
// session from a cold solve of the same full trace, which serves a plan of
// the same certified cost.

// defaultSessionTranscripts bounds the transcripts the front retains when
// Options.SessionTranscripts is zero.
const defaultSessionTranscripts = 1024

// transcript is one session's replayable history plus its current home — the
// backend that last served it, tried first so a replayed session keeps
// hitting its new warm home instead of bouncing off its dead ring owner.
type transcript struct {
	create  []byte
	extends [][]byte
	home    string
}

// transcriptEntry is one LRU node of the transcript store.
type transcriptEntry struct {
	id string
	tr *transcript
}

// transcriptStore is the bounded LRU registry of session transcripts.
type transcriptStore struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

func newTranscriptStore(max int) *transcriptStore {
	if max <= 0 {
		max = defaultSessionTranscripts
	}
	return &transcriptStore{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// put registers a fresh transcript for id, evicting the least-recently-used
// entries beyond the bound.
func (st *transcriptStore) put(id string, tr *transcript) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.entries[id]; ok {
		el.Value.(*transcriptEntry).tr = tr
		st.order.MoveToFront(el)
		return
	}
	for st.order.Len() >= st.max {
		oldest := st.order.Back()
		st.order.Remove(oldest)
		delete(st.entries, oldest.Value.(*transcriptEntry).id)
	}
	st.entries[id] = st.order.PushFront(&transcriptEntry{id: id, tr: tr})
}

// snapshot returns a stable copy of id's transcript for replay: the create
// body, the extends recorded so far, and the home backend.
func (st *transcriptStore) snapshot(id string) (*transcript, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return nil, false
	}
	tr := el.Value.(*transcriptEntry).tr
	st.order.MoveToFront(el)
	cp := &transcript{create: tr.create, home: tr.home,
		extends: append([][]byte(nil), tr.extends...)}
	return cp, true
}

// appendExtend records an accepted extension and the backend that served it.
func (st *transcriptStore) appendExtend(id string, body []byte, home string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return
	}
	tr := el.Value.(*transcriptEntry).tr
	tr.extends = append(tr.extends, body)
	tr.home = home
	st.order.MoveToFront(el)
}

// setHome records the backend that last served the session.
func (st *transcriptStore) setHome(id, home string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.entries[id]; ok {
		el.Value.(*transcriptEntry).tr.home = home
	}
}

// remove drops id's transcript, reporting whether it was held.
func (st *transcriptStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return false
	}
	st.order.Remove(el)
	delete(st.entries, id)
	return true
}

// len returns the number of tracked transcripts.
func (st *transcriptStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// newFrontSessionID draws a random 128-bit hex session identifier for create
// requests that did not pin their own.
func newFrontSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("front: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// sessionCandidates returns the backend indices to try for a session: the
// session's home backend first (when known and distinct from the ring owner),
// then the ring walk from the session ID's hash.
func (f *Front) sessionCandidates(id, home string) []int {
	order := f.ring.order(hashString(id))
	if home == "" {
		return order
	}
	hi := f.backendIndex(home)
	if hi < 0 || (len(order) > 0 && order[0] == hi) {
		return order
	}
	out := make([]int, 0, len(order)+1)
	out = append(out, hi)
	for _, idx := range order {
		if idx != hi {
			out = append(out, idx)
		}
	}
	return out
}

// backendIndex resolves a backend name to its index, -1 when unknown.
func (f *Front) backendIndex(name string) int {
	for i, b := range f.backends {
		if b.name == name {
			return i
		}
	}
	return -1
}

func (f *Front) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("front: request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("front: reading request body: %w", err))
		return
	}
	// Validate at the edge, like /v1/schedule: bad requests never consume a
	// backend attempt.
	var req service.SessionCreateRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("front: bad request body: %w", err))
		return
	}
	if req.Strategy != "" && req.Strategy != "lp-optimal" {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("front: sessions serve the lp-optimal strategy, not %q", req.Strategy))
		return
	}
	if _, err := req.BuildInstance(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The session ID decides the route, so the front pins one before
	// forwarding when the client did not: every later operation (and any
	// replay) names the same session on the same ring walk.
	if req.Session == "" {
		id, err := newFrontSessionID()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		req.Session = id
		if raw, err = json.Marshal(&req); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), f.opts.RequestTimeout)
	defer cancel()
	resp, _, err := f.forward(ctx, f.ring.order(hashString(req.Session)), "POST", "/v1/session", raw)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusBadGateway, err)
		return
	}
	if resp.status == http.StatusOK {
		f.transcripts.put(req.Session, &transcript{create: raw, home: resp.backend})
		f.sessionCreates.Add(1)
	}
	writeBuffered(w, resp)
}

func (f *Front) handleSessionExtend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("front: reading request body: %w", err))
		return
	}
	path := "/v1/session/" + id + "/extend"
	tr, tracked := f.transcripts.snapshot(id)
	home := ""
	if tracked {
		home = tr.home
	}

	ctx, cancel := context.WithTimeout(r.Context(), f.opts.RequestTimeout)
	defer cancel()
	resp, _, err := f.forward(ctx, f.sessionCandidates(id, home), "POST", path, raw)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusBadGateway, err)
		return
	}
	if resp.status == http.StatusNotFound && tracked {
		// The live backend that answered does not hold the session: it was
		// lost to an eviction, an expiry or a backend restart.  Replay the
		// transcript there (or on the next live backend) and apply the current
		// extension — the client sees only the successful result.
		resp, err = f.replaySession(ctx, id, tr, resp.backend, raw)
		if err != nil {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusBadGateway, err)
			return
		}
		w.Header().Set("X-Front-Replayed", "1")
	}
	if resp.status == http.StatusOK {
		f.transcripts.appendExtend(id, raw, resp.backend)
	}
	writeBuffered(w, resp)
}

// replaySession rebuilds the session from its transcript on a live backend —
// starting with the one that just answered 404, then the rest of the session's
// ring walk — and applies the pending extension.  Any 5xx or transport error
// moves to the next backend; a deterministic client error (4xx) aborts the
// replay, since every backend would refuse the same transcript the same way.
func (f *Front) replaySession(ctx context.Context, id string, tr *transcript, first string, extend []byte) (*bufferedResponse, error) {
	order := f.sessionCandidates(id, first)
	path := "/v1/session/" + id + "/extend"
	var lastErr error
candidates:
	for _, idx := range order {
		b := f.backends[idx]
		replay := append([][]byte{tr.create}, tr.extends...)
		for si, body := range replay {
			p := path
			if si == 0 {
				p = "/v1/session"
			}
			resp, aerr := f.attempt(ctx, b, "POST", p, body)
			if aerr != nil || resp.status >= 500 {
				b.failures.Add(1)
				b.br.onFailure()
				if aerr == nil {
					aerr = fmt.Errorf("front: %s answered %d during session replay: %s",
						b.name, resp.status, strings.TrimSpace(string(resp.body)))
				}
				lastErr = aerr
				continue candidates
			}
			if resp.status != http.StatusOK {
				return nil, fmt.Errorf("front: session replay step %d refused with %d: %s",
					si, resp.status, strings.TrimSpace(string(resp.body)))
			}
		}
		resp, aerr := f.attempt(ctx, b, "POST", path, extend)
		if aerr != nil || resp.status >= 500 {
			b.failures.Add(1)
			b.br.onFailure()
			if aerr == nil {
				aerr = fmt.Errorf("front: %s answered %d during session replay: %s",
					b.name, resp.status, strings.TrimSpace(string(resp.body)))
			}
			lastErr = aerr
			continue
		}
		b.br.onSuccess()
		f.sessionReplays.Add(1)
		f.transcripts.setHome(id, b.name)
		return resp, nil
	}
	if lastErr == nil {
		lastErr = errors.New("front: no backends available")
	}
	return nil, fmt.Errorf("front: session replay failed on every backend: %w", lastErr)
}

func (f *Front) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, tracked := f.transcripts.snapshot(id)
	f.transcripts.remove(id)
	home := ""
	if tracked {
		home = tr.home
	}
	ctx, cancel := context.WithTimeout(r.Context(), f.opts.RequestTimeout)
	defer cancel()
	resp, _, err := f.forward(ctx, f.sessionCandidates(id, home), "DELETE", "/v1/session/"+id, nil)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusBadGateway, err)
		return
	}
	writeBuffered(w, resp)
}
