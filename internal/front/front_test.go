package front_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pfcache/internal/front"
	"pfcache/internal/lp"
	"pfcache/internal/service"
)

// newBackend starts a real pcserve-equivalent backend for the front to route
// to.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.NewServer(service.Options{Shards: 2, CacheEntries: 64})
	hs := httptest.NewServer(svc)
	t.Cleanup(func() { hs.Close(); svc.Close() })
	return hs
}

// newFront builds a front over the backends with test-speed timings and
// serves it over HTTP.
func newFront(t *testing.T, backends []string, mod func(*front.Options)) (*front.Front, *httptest.Server) {
	t.Helper()
	opts := front.Options{
		Backends:       backends,
		HealthInterval: 20 * time.Millisecond,
		// Probes poll fast but time out generously: under -race a loaded
		// process can stall a probe round-trip past the poll period, and a
		// timeout that tight would flap backends unhealthy for no reason.
		HealthTimeout:    2 * time.Second,
		FailThreshold:    2,
		RestoreThreshold: 1,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    5 * time.Millisecond,
	}
	if mod != nil {
		mod(&opts)
	}
	f, err := front.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	hs := httptest.NewServer(f)
	t.Cleanup(hs.Close)
	return f, hs
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp, payload
}

// zipfSchedule builds a schedule request over a seeded zipf workload.  Vary
// n across lp-optimal requests: distinct LP shapes keep warm-started shard
// solvers from changing iteration counts between a fresh reference solver
// and a reused backend one.
func zipfSchedule(strategy string, n int, seed int64) *service.ScheduleRequest {
	return &service.ScheduleRequest{
		Strategy: strategy,
		Workload: &service.WorkloadSpec{Kind: "zipf", N: n, Blocks: 9, S: 1.2, Seed: seed},
		K:        4,
		F:        3,
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrontForwardsScheduleByteIdentical(t *testing.T) {
	backend := newBackend(t)
	_, fs := newFront(t, []string{backend.URL}, nil)

	for i, req := range []*service.ScheduleRequest{
		zipfSchedule("aggressive", 30, 1),
		zipfSchedule("lp-optimal", 24, 2),
		zipfSchedule("opt", 14, 3),
	} {
		want, err := service.ScheduleBody(req, lp.Options{WarmStart: true})
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		resp, got := postJSON(t, fs.URL+"/v1/schedule", mustMarshal(t, req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("request %d (%s): front body differs from direct computation\nfront: %s\nwant:  %s",
				i, req.Strategy, got, want)
		}
		if resp.Header.Get("X-Backend") != backend.URL {
			t.Errorf("request %d: X-Backend = %q, want %q", i, resp.Header.Get("X-Backend"), backend.URL)
		}
	}
}

func TestFrontRoutesSameInstanceToSameBackend(t *testing.T) {
	var backends []string
	for i := 0; i < 3; i++ {
		backends = append(backends, newBackend(t).URL)
	}
	_, fs := newFront(t, backends, nil)

	body := mustMarshal(t, zipfSchedule("conservative", 40, 7))
	var first string
	for i := 0; i < 5; i++ {
		resp, payload := postJSON(t, fs.URL+"/v1/schedule", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: status %d: %s", i, resp.StatusCode, payload)
		}
		b := resp.Header.Get("X-Backend")
		if i == 0 {
			first = b
			continue
		}
		if b != first {
			t.Fatalf("attempt %d routed to %s; attempt 0 went to %s — affinity broken", i, b, first)
		}
		// Repeats of an identical request must be served from that backend's
		// cache — the point of affine routing.
		if xc := resp.Header.Get("X-Cache"); xc != "hit" {
			t.Errorf("attempt %d: X-Cache = %q, want hit", i, xc)
		}
	}
}

// flakyBackend answers /readyz but fails its first `failures` schedule
// requests with 500, then proxies nothing — it only ever fails, so a success
// must come from another backend.
type flakyBackend struct {
	calls atomic.Int64
}

func (fb *flakyBackend) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok\n") })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok\n") })
	mux.HandleFunc("POST /v1/schedule", func(w http.ResponseWriter, r *http.Request) {
		fb.calls.Add(1)
		http.Error(w, "flaky: injected failure", http.StatusInternalServerError)
	})
	return mux
}

func TestFrontRetriesOntoHealthyBackend(t *testing.T) {
	fb := &flakyBackend{}
	bad := httptest.NewServer(fb.handler())
	t.Cleanup(bad.Close)
	good := newBackend(t)

	f, fs := newFront(t, []string{bad.URL, good.URL}, func(o *front.Options) {
		o.MaxAttempts = 3
	})

	// Whatever the ring order, every request must end on the good backend
	// with a correct body, no matter how many land on the flaky one first.
	for i := 0; i < 8; i++ {
		req := zipfSchedule("aggressive", 20+i, int64(100+i))
		want, err := service.ScheduleBody(req, lp.Options{WarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		resp, got := postJSON(t, fs.URL+"/v1/schedule", mustMarshal(t, req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("request %d: body differs after retry", i)
		}
		if resp.Header.Get("X-Backend") != good.URL {
			t.Errorf("request %d: served by %q, want the good backend", i, resp.Header.Get("X-Backend"))
		}
	}

	stats := f.Stats(t.Context())
	if fb.calls.Load() > 0 && stats.Retries == 0 {
		t.Errorf("flaky backend saw %d calls but front counted no retries", fb.calls.Load())
	}
}

func TestFrontExhaustionIs502(t *testing.T) {
	fb := &flakyBackend{}
	bad := httptest.NewServer(fb.handler())
	t.Cleanup(bad.Close)

	_, fs := newFront(t, []string{bad.URL}, func(o *front.Options) {
		o.MaxAttempts = 2
	})

	resp, body := postJSON(t, fs.URL+"/v1/schedule", mustMarshal(t, zipfSchedule("aggressive", 20, 1)))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("502 reply lacks a Retry-After hint")
	}
	if !strings.Contains(string(body), "attempts failed") {
		t.Errorf("error body %q does not describe the exhaustion", body)
	}
}

// TestFrontValidatesAtTheEdge: malformed requests are rejected by the front
// itself without spending a backend attempt.
func TestFrontValidatesAtTheEdge(t *testing.T) {
	fb := &flakyBackend{}
	bad := httptest.NewServer(fb.handler())
	t.Cleanup(bad.Close)
	_, fs := newFront(t, []string{bad.URL}, nil)

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"bad json", []byte("{nope"), http.StatusBadRequest},
		{"missing strategy", []byte(`{"seq":[1,2,3],"k":2}`), http.StatusBadRequest},
		{"bad instance", []byte(`{"strategy":"aggressive"}`), http.StatusBadRequest},
		{"oversized", []byte(`{"strategy":"` + strings.Repeat("a", 17<<20) + `"}`), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, fs.URL+"/v1/schedule", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d; body: %.200s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	if n := fb.calls.Load(); n != 0 {
		t.Errorf("invalid requests reached the backend %d times", n)
	}
}

func TestFrontSweepFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep fan-out is slow")
	}
	b1, b2 := newBackend(t), newBackend(t)
	_, fs := newFront(t, []string{b1.URL, b2.URL}, nil)

	ids := []string{"E1", "E2"}
	// References computed locally, sequentially.  Only the Results tables
	// are comparable: the lp/opt counter blocks are process-wide diffs and
	// the front's two single-ID sweeps run concurrently in this process.
	want := make(map[string][]service.TableWire)
	for _, id := range ids {
		ref, err := service.RunSweep(&service.SweepRequest{IDs: []string{id}, Stable: true, Workers: 1})
		if err != nil {
			t.Fatalf("reference sweep %s: %v", id, err)
		}
		want[id] = ref.Results
	}

	body := mustMarshal(t, &service.SweepRequest{IDs: ids, Stable: true, Workers: 1})
	resp, err := http.Post(fs.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	got := map[string][]service.TableWire{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var line struct {
			ID      string `json:"id"`
			Backend string `json:"backend"`
			Sweep   *struct {
				Results []service.TableWire `json:"results"`
			} `json:"sweep"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("experiment %s failed: %s", line.ID, line.Error)
		}
		if line.Backend == "" || line.Sweep == nil {
			t.Fatalf("line for %s lacks backend or sweep: %s", line.ID, sc.Text())
		}
		got[line.ID] = line.Sweep.Results
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, id := range ids {
		w, g := want[id], got[id]
		if g == nil {
			t.Fatalf("no line for experiment %s", id)
		}
		if fmt.Sprint(g) != fmt.Sprint(w) {
			t.Errorf("experiment %s: fanned-out results differ from local sweep\ngot:  %v\nwant: %v", id, g, w)
		}
	}
}

func TestFrontReadinessFollowsBackends(t *testing.T) {
	svc := service.NewServer(service.Options{Shards: 1})
	hs := httptest.NewServer(svc)
	t.Cleanup(func() { hs.Close(); svc.Close() })
	_, fs := newFront(t, []string{hs.URL}, nil)

	get := func(path string) int {
		resp, err := http.Get(fs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz with a live backend = %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}

	// Drain the backend: its /readyz flips to 503, and within a few probe
	// intervals the front must stop reporting ready (liveness stays 200).
	svc.BeginDrain()
	deadline := time.Now().Add(5 * time.Second)
	for get("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("front /readyz never flipped to 503 after its only backend drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("front /healthz = %d during backend drain, want 200 (liveness is not readiness)", got)
	}
}
