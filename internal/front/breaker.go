package front

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker state.
type breakerState int

const (
	breakerClosed   breakerState = iota // normal operation
	breakerOpen                         // tripping: requests skip this backend
	breakerHalfOpen                     // cooling down: one probe allowed
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-backend circuit breaker.  `threshold` consecutive request
// failures open it; while open, allow() refuses (the front skips the backend
// without spending an attempt); after `cooldown` one probe request is let
// through, and its outcome closes or re-opens the circuit.  The breaker
// reacts to real request traffic, complementing the active health checker
// (which reacts to probe traffic): a backend that answers /readyz but fails
// every solve still gets fenced.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu          sync.Mutex
	state       breakerState
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the circuit last opened
	probing     bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may be sent to this backend now.  In the
// half-open state only a single probe is allowed at a time.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a successful request, closing the circuit.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// onFailure records a failed request, opening the circuit after `threshold`
// consecutive failures (immediately when a half-open probe fails).
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// snapshot returns the state for /v1/stats.
func (b *breaker) snapshot() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
