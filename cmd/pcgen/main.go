// Command pcgen generates problem instances in the pfcache text format.
//
// Usage:
//
//	pcgen -workload zipf -n 200 -blocks 32 -k 8 -f 4 -disks 2 > instance.txt
//	pcgen -workload adversary -k 7 -f 4 -phases 10 > hard.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"pfcache/internal/core"
	"pfcache/internal/workload"
)

func main() {
	kind := flag.String("workload", "uniform", "workload: uniform, zipf, scan, loop, phased, interleaved, mixed, adversary")
	n := flag.Int("n", 200, "number of requests")
	blocks := flag.Int("blocks", 32, "number of distinct blocks")
	k := flag.Int("k", 8, "cache size")
	f := flag.Int("f", 4, "fetch time")
	disks := flag.Int("disks", 1, "number of disks")
	assign := flag.String("assign", "stripe", "disk assignment: stripe, partition, random")
	seed := flag.Int64("seed", 1, "random seed")
	zipfS := flag.Float64("zipf-s", 1.1, "Zipf exponent")
	phases := flag.Int("phases", 8, "phases for the adversary / phased workloads")
	flag.Parse()

	strategy, err := workload.ParseAssignment(*assign)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var in *core.Instance
	switch *kind {
	case "uniform":
		in = workload.Instance(workload.Uniform(*n, *blocks, *seed), *k, *f, *disks, strategy, *seed)
	case "zipf":
		in = workload.Instance(workload.Zipf(*n, *blocks, *zipfS, *seed), *k, *f, *disks, strategy, *seed)
	case "scan":
		in = workload.Instance(workload.SequentialScan(*n, *blocks), *k, *f, *disks, strategy, *seed)
	case "loop":
		in = workload.Instance(workload.Loop(*blocks, (*n+*blocks-1)/(*blocks)), *k, *f, *disks, strategy, *seed)
	case "phased":
		in = workload.Instance(workload.Phased(*phases, *n / *phases, *blocks, *blocks/4, *seed), *k, *f, *disks, strategy, *seed)
	case "interleaved":
		in = workload.Instance(workload.Interleaved(*n, *disks, *blocks), *k, *f, *disks, strategy, *seed)
	case "mixed":
		in = workload.Instance(workload.Mixed(*n, *blocks/2, *blocks/2, 8, *seed), *k, *f, *disks, strategy, *seed)
	case "adversary":
		var err error
		in, err = workload.AggressiveAdversary(*k, *f, *phases)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kind)
		os.Exit(2)
	}
	if err := workload.Write(os.Stdout, in); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
