// Command pcsim runs a prefetching/caching algorithm on an instance and
// prints the resulting schedule cost.
//
// Usage:
//
//	pcgen -workload zipf -disks 2 > inst.txt
//	pcsim -algo aggressive < inst.txt
//	pcsim -algo lp-optimal -schedule < inst.txt
//
// Single-disk instances accept the algorithms of package single (aggressive,
// conservative, delay:<d>, delay:auto, combination, demand-min, demand-lru,
// demand-fifo); multi-disk instances accept lp-optimal, aggressive,
// conservative and demand.
package main

import (
	"flag"
	"fmt"
	"os"

	"pfcache/internal/core"
	"pfcache/internal/parallel"
	"pfcache/internal/sim"
	"pfcache/internal/single"
	"pfcache/internal/workload"
)

func main() {
	algo := flag.String("algo", "aggressive", "algorithm name")
	showSchedule := flag.Bool("schedule", false, "print the fetch schedule")
	trace := flag.Bool("trace", false, "print the execution trace")
	flag.Parse()

	in, err := workload.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sched, err := computeSchedule(in, *algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := sim.Run(in, sched, sim.Options{Trace: *trace})
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedule infeasible: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("instance: %v\n", in)
	fmt.Printf("algorithm: %s\n", *algo)
	fmt.Printf("fetches: %d\n", res.FetchCount)
	fmt.Printf("stall time: %d\n", res.Stall)
	fmt.Printf("elapsed time: %d\n", res.Elapsed)
	fmt.Printf("extra cache locations: %d\n", res.ExtraCache)
	if *showSchedule {
		fmt.Println("schedule:")
		fmt.Println(sched)
	}
	if *trace {
		fmt.Println("trace:")
		for _, e := range res.Events {
			fmt.Println("  " + e.String())
		}
	}
}

func computeSchedule(in *core.Instance, algo string) (*core.Schedule, error) {
	if in.Disks == 1 {
		if a, err := single.ByName(algo); err == nil {
			return a.Run(in)
		}
	}
	a, err := parallel.ByName(algo)
	if err != nil {
		return nil, fmt.Errorf("unknown algorithm %q for a %d-disk instance", algo, in.Disks)
	}
	return a.Run(in)
}
