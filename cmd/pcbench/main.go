// Command pcbench runs the experiment suite that reproduces the paper's
// results and prints one table per experiment.  Experiments (and the
// independent points inside each experiment) run on a bounded worker pool;
// output order and content are identical to a sequential run.
//
// Usage:
//
//	pcbench                 # run every experiment
//	pcbench -run E3,E7      # run selected experiments
//	pcbench -list           # list experiment identifiers
//	pcbench -csv            # emit CSV instead of aligned text
//	pcbench -json           # emit JSON (for BENCH_*.json trajectory tracking)
//	pcbench -json -stable   # omit wall times, for byte-reproducible JSON
//	pcbench -workers 1      # force sequential execution
//	pcbench -solver flat    # solve the LPs with the flat-tableau simplex
//	pcbench -cpuprofile f   # write a pprof CPU profile of the run to f
//	pcbench -memprofile f   # write a pprof heap profile after the run to f
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pfcache/internal/experiments"
	"pfcache/internal/lp"
	"pfcache/internal/opt"
)

// jsonResult is the JSON shape of one experiment result, stable for
// trajectory tracking across revisions.
type jsonResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds,omitempty"`
}

// jsonLPCounters mirrors lp.Counters with stable JSON names: how much
// simplex work the whole run performed, recorded so trajectory files catch
// algorithmic regressions (pivot counts) and not just wall-time noise.
type jsonLPCounters struct {
	Solves           uint64 `json:"solves"`
	Iterations       uint64 `json:"iterations"`
	PricingPasses    uint64 `json:"pricing_passes"`
	Refactorizations uint64 `json:"refactorizations"`
	EtaColumns       uint64 `json:"eta_columns"`
}

// jsonOptCounters mirrors opt.Counters: how much exact-search work the run
// performed (the A*/branch-and-bound engine of internal/opt).  Expansion and
// pruning counts catch search regressions the same way pivot counts catch
// simplex regressions.
type jsonOptCounters struct {
	Searches      uint64 `json:"searches"`
	Expanded      uint64 `json:"expanded"`
	Generated     uint64 `json:"generated"`
	PrunedByBound uint64 `json:"pruned_by_bound"`
	DuplicateHits uint64 `json:"duplicate_hits"`
	PeakTable     uint64 `json:"peak_table"`
}

// jsonOutput is the top-level -json shape: per-experiment tables plus the
// LP solver configuration and the LP / exact-search work counters of the run.
type jsonOutput struct {
	Solver  string          `json:"solver"`
	Results []jsonResult    `json:"results"`
	LP      jsonLPCounters  `json:"lp"`
	Opt     jsonOptCounters `json:"opt"`
}

// main only converts run's exit code: all the work happens in run, whose
// deferred profile/file cleanup must execute before os.Exit.
func main() { os.Exit(run()) }

func run() int {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	runFlag := flag.String("run", "", "comma-separated experiment identifiers to run (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	jsonOut := flag.Bool("json", false, "emit results as JSON (includes per-experiment wall time plus LP solver and exact-search counters)")
	stable := flag.Bool("stable", false, "omit wall times from -json output so repeated runs are byte-identical")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
	solver := flag.String("solver", "revised", "LP simplex implementation: revised or flat")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	method, err := lp.ParseMethod(*solver)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	experiments.SetSolverMethod(method)
	experiments.SetWorkers(*workers)

	selected := experiments.All()
	if *runFlag != "" {
		selected = nil
		for _, id := range strings.Split(*runFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	lp.StatsReset()
	opt.StatsReset()
	results, err := experiments.RunAll(selected)
	// Print whatever completed even when some experiment failed, so one
	// broken experiment does not hide the others' results (failed entries
	// have a nil table and are skipped).
	if *jsonOut {
		counters := lp.StatsSnapshot()
		optCounters := opt.StatsSnapshot()
		out := jsonOutput{
			Solver: method.String(),
			LP: jsonLPCounters{
				Solves:           counters.Solves,
				Iterations:       counters.Iterations,
				PricingPasses:    counters.PricingPasses,
				Refactorizations: counters.Refactorizations,
				EtaColumns:       counters.EtaColumns,
			},
			Opt: jsonOptCounters{
				Searches:      optCounters.Searches,
				Expanded:      optCounters.Expanded,
				Generated:     optCounters.Generated,
				PrunedByBound: optCounters.PrunedByBound,
				DuplicateHits: optCounters.DuplicateHits,
				PeakTable:     optCounters.PeakTable,
			},
			Results: make([]jsonResult, 0, len(results)),
		}
		for _, r := range results {
			if r.Table == nil {
				continue
			}
			jr := jsonResult{
				ID:      r.Experiment.ID,
				Title:   r.Experiment.Title,
				Note:    r.Table.Note,
				Headers: r.Table.Headers,
				Rows:    r.Table.Rows,
			}
			if !*stable {
				jr.Seconds = r.Elapsed.Seconds()
			}
			out.Results = append(out.Results, jr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(out); encErr != nil {
			fmt.Fprintln(os.Stderr, encErr)
			return 1
		}
	} else {
		for _, r := range results {
			if r.Table == nil {
				continue
			}
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", r.Experiment.ID, r.Experiment.Title, r.Table.CSV())
			} else {
				fmt.Printf("%s\n", r.Table)
			}
		}
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			return 1
		}
		runtime.GC()
		perr := pprof.WriteHeapProfile(f)
		f.Close()
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			return 1
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
