// Command pcbench runs the experiment suite that reproduces the paper's
// results and prints one table per experiment.  Experiments (and the
// independent points inside each experiment) run on a bounded worker pool;
// output order and content are identical to a sequential run.
//
// Usage:
//
//	pcbench                 # run every experiment
//	pcbench -run E3,E7      # run selected experiments
//	pcbench -list           # list experiment identifiers
//	pcbench -csv            # emit CSV instead of aligned text
//	pcbench -json           # emit JSON (for BENCH_*.json trajectory tracking)
//	pcbench -json -stable   # omit wall times, for byte-reproducible JSON
//	pcbench -workers 1      # force sequential execution
//	pcbench -opt-workers 4  # run the exact searches on 4 goroutines (stall
//	                        # values are invariant; effort counters move)
//	pcbench -solver flat    # solve the LPs with the flat-tableau simplex
//	pcbench -pricing steepest-edge  # override the pinned entering-column rule
//	pcbench -basis lu       # override the pinned basis representation
//	pcbench -replay         # trace-replay benchmark: serve a growing trace
//	                        # via incremental warm re-solves and via per-step
//	                        # cold rebuilds, verify the served schedules are
//	                        # byte-identical, report the per-step speedup
//	pcbench -timings f      # embed ns/op figures parsed from a `go test
//	                        # -bench` output file as the JSON timings block
//	pcbench -cpuprofile f   # write a pprof CPU profile of the run to f
//	pcbench -memprofile f   # write a pprof heap profile after the run to f
//	pcbench -serve-url URL  # run the sweep on a live pcserve and verify it
//	                        # matches the in-process run byte for byte
//
// The experiment suite pins the revised simplex to the engines the committed
// BENCH_*.json files were recorded with (Dantzig pricing, eta basis) so
// historical schedule rows stay byte-reproducible; -pricing and -basis
// select the new engines (steepest-edge, lu) for comparisons.
//
// The -json output is produced by service.RunSweep, the same code path the
// pcserve /v1/sweep endpoint streams; with -serve-url, pcbench becomes a
// smoke client of a running server and fails if the served bytes differ from
// what this process computes locally.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pfcache/internal/experiments"
	"pfcache/internal/lp"
	"pfcache/internal/service"
)

// main only converts run's exit code: all the work happens in run, whose
// deferred profile/file cleanup must execute before os.Exit.
func main() { os.Exit(run()) }

func run() int {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	runFlag := flag.String("run", "", "comma-separated experiment identifiers to run (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	jsonOut := flag.Bool("json", false, "emit results as JSON (includes per-experiment wall time plus LP solver and exact-search counters)")
	stable := flag.Bool("stable", false, "omit wall times from -json output so repeated runs are byte-identical")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
	optWorkers := flag.Int("opt-workers", 1, "exact-search worker count (1 = sequential; >1 is for wall-clock comparisons — stall values are invariant but effort counters move, so combine with care under -stable)")
	solver := flag.String("solver", "revised", "LP simplex implementation: revised or flat")
	pricing := flag.String("pricing", "", "revised-simplex pricing rule: steepest-edge or dantzig (default: the suite's pinned dantzig)")
	basis := flag.String("basis", "", "revised-simplex basis representation: lu or eta (default: the suite's pinned eta)")
	batch := flag.Bool("batch", true, "route the LP-heavy experiment rows through batched solves (shared symbolic factorization, arena reuse); results are byte-identical either way")
	replay := flag.Bool("replay", false, "run the trace-replay benchmark instead of the experiment sweep: incremental warm re-solves vs per-step cold rebuilds on a growing trace")
	timings := flag.String("timings", "", "file holding `go test -bench` output whose ns/op figures are embedded in the -json timings block")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
	serveURL := flag.String("serve-url", "", "run the sweep via a live pcserve at this base URL and verify it matches the in-process run")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if _, err := lp.ParseMethod(*solver); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *pricing != "" {
		if _, err := lp.ParsePricing(*pricing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *basis != "" {
		if _, err := lp.ParseBasis(*basis); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *replay {
		if *jsonOut || *serveURL != "" || *timings != "" {
			fmt.Fprintln(os.Stderr, "-replay is a standalone benchmark; it cannot be combined with -json, -serve-url or -timings")
			return 2
		}
		return runReplay(*solver, *pricing, *basis)
	}
	var benchTimings map[string]float64
	if *timings != "" {
		if !*jsonOut {
			fmt.Fprintln(os.Stderr, "-timings requires -json (the timings block only exists in the JSON trajectory format)")
			return 2
		}
		var err error
		if benchTimings, err = parseTimings(*timings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	experiments.SetBatch(*batch)
	experiments.SetOptWorkers(*optWorkers)
	var ids []string
	if *runFlag != "" {
		ids = strings.Split(*runFlag, ",")
	}
	req := &service.SweepRequest{IDs: ids, Stable: *stable, Workers: *workers,
		Solver: *solver, Pricing: *pricing, Basis: *basis}
	if _, err := service.ResolveExperiments(req.IDs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *serveURL != "" {
		// Comparing a remote sweep against a concurrent run in this process
		// would race the server for wall-clock time only, but the comparison
		// must be on deterministic bytes anyway.
		if !*stable {
			fmt.Fprintln(os.Stderr, "-serve-url requires -stable (wall times can never match byte-for-byte)")
			return 2
		}
		if *cpuProfile != "" || *memProfile != "" {
			fmt.Fprintln(os.Stderr, "-serve-url cannot be combined with -cpuprofile/-memprofile (the sweep runs on the server)")
			return 2
		}
		if *timings != "" {
			fmt.Fprintln(os.Stderr, "-serve-url cannot be combined with -timings (the server's sweep carries no local benchmark figures)")
			return 2
		}
		return runAgainstServer(*serveURL, req)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	code := 0
	if *jsonOut {
		// The sweep runner snapshots the process-wide counters around the
		// run and is shared with the pcserve /v1/sweep endpoint, so CLI and
		// service output are the same bytes.  Print whatever completed even
		// when some experiment failed, so one broken experiment does not
		// hide the others' results.
		resp, err := service.RunSweep(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
		if resp != nil {
			resp.Timings = benchTimings
			if encErr := service.EncodeSweep(os.Stdout, resp); encErr != nil {
				fmt.Fprintln(os.Stderr, encErr)
				code = 1
			}
		}
	} else {
		code = runText(req, *csv)
	}

	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			return 1
		}
		runtime.GC()
		perr := pprof.WriteHeapProfile(f)
		f.Close()
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			return 1
		}
	}
	return code
}

// runReplay runs the trace-replay benchmark: the growing trace of
// experiments.ReplayWorkload served once through the incremental path
// (Model.Extend + warm dual re-solve) and once through per-step cold
// rebuilds, both on the tie-broken program whose unique optimum forces the
// two chains onto the same vertex.  The served schedules must be
// byte-identical at every step — a correctness failure exits non-zero — and
// the per-step wall times and pivot counts are reported; the committed
// trajectory's wall-clock record of the same gap is the
// BenchmarkReplayIncrementalStep / BenchmarkReplayColdStep pair in the
// BENCH_*.json timings block.
func runReplay(solver, pricing, basis string) int {
	method, _ := lp.ParseMethod(solver)
	experiments.SetSolverMethod(method)
	if pricing != "" {
		p, _ := lp.ParsePricing(pricing)
		experiments.SetPricing(p)
	} else {
		experiments.ResetPricing()
	}
	if basis != "" {
		b, _ := lp.ParseBasis(basis)
		experiments.SetBasis(b)
	} else {
		experiments.ResetBasis()
	}
	base, steps := experiments.ReplayWorkload()
	disks := base.Disks
	rep, err := experiments.ReplayMeasure(base, steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("trace replay: base n=%d, %d single-request extensions, D=%d\n",
		rep.BaseN, rep.Steps, disks)
	fmt.Printf("  incremental (extend + warm dual re-solve): %10.3f ms/step, %6d pivots total\n",
		rep.WarmNS/1e6, rep.WarmPivots)
	fmt.Printf("  cold (rebuild + from-scratch solve):       %10.3f ms/step, %6d pivots total\n",
		rep.ColdNS/1e6, rep.ColdPivots)
	fmt.Printf("  speedup: %.1fx   schedules byte-identical: %v\n", rep.Speedup, rep.Identical)
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "FAIL: incremental and cold chains served different schedules")
		return 1
	}
	return 0
}

// timingLine matches one `go test -bench` result line, capturing the
// benchmark name (CPU suffix stripped) and its ns/op figure.
var timingLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseTimings reads a `go test -bench` output file and returns the ns/op of
// every benchmark line in it, for the JSON timings block.  Non-benchmark
// lines (experiment tables, PASS/ok trailers) are ignored.
func parseTimings(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		m := timingLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = ns
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pcbench: no benchmark lines found in %s", path)
	}
	return out, nil
}

// runText prints aligned text tables (or CSV) straight from the experiment
// driver.
func runText(req *service.SweepRequest, csv bool) int {
	method, _ := lp.ParseMethod(req.Solver)
	experiments.SetSolverMethod(method)
	if req.Pricing != "" {
		p, _ := lp.ParsePricing(req.Pricing)
		experiments.SetPricing(p)
	} else {
		experiments.ResetPricing()
	}
	if req.Basis != "" {
		b, _ := lp.ParseBasis(req.Basis)
		experiments.SetBasis(b)
	} else {
		experiments.ResetBasis()
	}
	experiments.SetWorkers(req.Workers)
	selected, _ := service.ResolveExperiments(req.IDs)
	results, err := experiments.RunAll(selected)
	for _, r := range results {
		if r.Table == nil {
			continue
		}
		if csv {
			fmt.Printf("# %s: %s\n%s\n", r.Experiment.ID, r.Experiment.Title, r.Table.CSV())
		} else {
			fmt.Printf("%s\n", r.Table)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// runAgainstServer posts the sweep to a live pcserve instance, runs the same
// sweep in-process, and verifies the two outputs are byte-identical.  The
// server's bytes go to stdout either way, so the command doubles as a remote
// sweep client.
func runAgainstServer(baseURL string, req *service.SweepRequest) int {
	reqBody, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	resp, err := http.Post(strings.TrimRight(baseURL, "/")+"/v1/sweep", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "server returned %s: %s", resp.Status, served)
		return 1
	}

	local, err := service.RunSweep(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var localBuf bytes.Buffer
	if err := service.EncodeSweep(&localBuf, local); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	os.Stdout.Write(served)
	if !bytes.Equal(served, localBuf.Bytes()) {
		fmt.Fprintf(os.Stderr, "MISMATCH: served sweep differs from the in-process run (%d vs %d bytes)\n",
			len(served), localBuf.Len())
		return 1
	}
	fmt.Fprintln(os.Stderr, "server output matches the in-process run")
	return 0
}
