// Command pcbench runs the experiment suite that reproduces the paper's
// results and prints one table per experiment.
//
// Usage:
//
//	pcbench                 # run every experiment
//	pcbench -run E3,E7      # run selected experiments
//	pcbench -list           # list experiment identifiers
//	pcbench -csv            # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfcache/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	run := flag.String("run", "", "comma-separated experiment identifiers to run (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	selected := experiments.All()
	if *run != "" {
		selected = nil
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tab.CSV())
		} else {
			fmt.Printf("%s\n", tab)
		}
	}
}
