// Command pcbench runs the experiment suite that reproduces the paper's
// results and prints one table per experiment.  Experiments (and the
// independent points inside each experiment) run on a bounded worker pool;
// output order and content are identical to a sequential run.
//
// Usage:
//
//	pcbench                 # run every experiment
//	pcbench -run E3,E7      # run selected experiments
//	pcbench -list           # list experiment identifiers
//	pcbench -csv            # emit CSV instead of aligned text
//	pcbench -json           # emit JSON (for BENCH_*.json trajectory tracking)
//	pcbench -workers 1      # force sequential execution
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pfcache/internal/experiments"
)

// jsonResult is the JSON shape of one experiment result, stable for
// trajectory tracking across revisions.
type jsonResult struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Seconds float64    `json:"seconds"`
}

func main() {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	run := flag.String("run", "", "comma-separated experiment identifiers to run (default: all)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array (includes per-experiment wall time)")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	experiments.SetWorkers(*workers)

	selected := experiments.All()
	if *run != "" {
		selected = nil
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	results, err := experiments.RunAll(selected)
	// Print whatever completed even when some experiment failed, so one
	// broken experiment does not hide the others' results (failed entries
	// have a nil table and are skipped).
	if *jsonOut {
		out := make([]jsonResult, 0, len(results))
		for _, r := range results {
			if r.Table == nil {
				continue
			}
			out = append(out, jsonResult{
				ID:      r.Experiment.ID,
				Title:   r.Experiment.Title,
				Note:    r.Table.Note,
				Headers: r.Table.Headers,
				Rows:    r.Table.Rows,
				Seconds: r.Elapsed.Seconds(),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(out); encErr != nil {
			fmt.Fprintln(os.Stderr, encErr)
			os.Exit(1)
		}
	} else {
		for _, r := range results {
			if r.Table == nil {
				continue
			}
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", r.Experiment.ID, r.Experiment.Title, r.Table.CSV())
			} else {
				fmt.Printf("%s\n", r.Table)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
