// Command pcload is a closed-loop load generator for pcserve or pcfront.
//
// A fixed set of workers issues schedule requests back-to-back (each worker
// sends its next request only after the previous one completes — a closed
// loop, so offered load adapts to service capacity instead of overrunning
// it).  Requests are drawn from a seeded pool of distinct instances; the
// duplicate ratio controls how often the generator re-sends an instance it
// has already sent, exercising the server's response cache and request
// coalescing the way real duplicate-heavy traffic does.
//
// Usage:
//
//	pcload -url http://localhost:8080 -c 8 -n 500
//	pcload -c 16 -n 2000 -dup 0.75 -strategy lp-optimal -disks 2
//	pcload -seed 7 -json
//	pcload -n 1000 -max-error-rate 0.01 -json
//
// The report gives throughput, error counts by status, a per-status latency
// breakdown, and the latency distribution (p50/p90/p99/max) over successful
// requests.  The exit code is 0 while the error rate stays within
// -max-error-rate (default 0: any error fails), so the command doubles as a
// CI or canary gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pfcache/internal/service"
)

func main() { os.Exit(run()) }

type result struct {
	status  int // 0 = transport error
	latency time.Duration
}

func run() int {
	url := flag.String("url", "http://localhost:8080", "pcserve or pcfront base URL")
	concurrency := flag.Int("c", 8, "number of closed-loop workers")
	total := flag.Int("n", 500, "total requests to send")
	dup := flag.Float64("dup", 0.5, "fraction of requests duplicating an earlier instance (0..1)")
	strategy := flag.String("strategy", "aggressive", "schedule strategy for every request")
	blocks := flag.Int("blocks", 12, "distinct blocks per generated workload")
	reqs := flag.Int("reqs", 48, "requests per generated workload")
	k := flag.Int("k", 6, "cache size k of generated instances")
	f := flag.Int("f", 4, "fetch time F of generated instances")
	disks := flag.Int("disks", 1, "disks per generated instance")
	seed := flag.Int64("seed", 1, "seed for the instance pool and duplicate pattern")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	maxErrRate := flag.Float64("max-error-rate", 0,
		"error-rate fraction (0..1) tolerated before exiting non-zero (0 = any error fails)")
	flag.Parse()

	if *concurrency < 1 || *total < 1 || *dup < 0 || *dup > 1 {
		fmt.Fprintln(os.Stderr, "pcload: need -c >= 1, -n >= 1 and 0 <= -dup <= 1")
		return 2
	}
	if *maxErrRate < 0 || *maxErrRate > 1 {
		fmt.Fprintln(os.Stderr, "pcload: need 0 <= -max-error-rate <= 1")
		return 2
	}

	// Distinct-instance pool: a duplicate ratio r over n requests needs
	// about n*(1-r) distinct instances.  Workers then draw uniformly from
	// the pool, so later draws repeat earlier ones at the requested rate.
	distinct := int(float64(*total)*(1-*dup) + 0.5)
	if distinct < 1 {
		distinct = 1
	}
	if distinct > *total {
		distinct = *total
	}
	pool := make([][]byte, distinct)
	for i := range pool {
		body, err := json.Marshal(&service.ScheduleRequest{
			Strategy: *strategy,
			Workload: &service.WorkloadSpec{
				Kind: "zipf", N: *reqs, Blocks: *blocks, S: 1.1,
				Seed: *seed + int64(i),
			},
			K: *k, F: *f, Disks: *disks,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcload:", err)
			return 2
		}
		pool[i] = body
	}

	client := &http.Client{Timeout: *timeout}
	results := make([]result, *total)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(*seed), uint64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= *total {
					return
				}
				body := pool[rng.IntN(len(pool))]
				t0 := time.Now()
				resp, err := client.Post(*url+"/v1/schedule", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					results[i] = result{status: 0, latency: lat}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results[i] = result{status: resp.StatusCode, latency: lat}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildReport(results, elapsed, *concurrency, distinct)
	printReport(rep, *jsonOut)
	// The exit code gates CI and canary scripts: strict by default, but a
	// chaos run that tolerates a known fault budget can raise the bar.
	if rep.ErrorRate > *maxErrRate {
		return 1
	}
	return 0
}

// statusLatency is the latency distribution of one response status class.
type statusLatency struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

type loadReport struct {
	Requests    int            `json:"requests"`
	Distinct    int            `json:"distinct_instances"`
	Concurrency int            `json:"concurrency"`
	ElapsedSec  float64        `json:"elapsed_sec"`
	Throughput  float64        `json:"requests_per_sec"`
	Errors      int            `json:"errors"`
	ErrorRate   float64        `json:"error_rate"`
	ByStatus    map[string]int `json:"by_status"`
	// LatencyByStatus breaks the latency distribution down per status class
	// (errors included): fast 500s and slow 200s are different failures.
	LatencyByStatus map[string]statusLatency `json:"latency_by_status"`
	P50Ms           float64                  `json:"p50_ms"`
	P90Ms           float64                  `json:"p90_ms"`
	P99Ms           float64                  `json:"p99_ms"`
	MaxMs           float64                  `json:"max_ms"`
}

func statusKey(status int) string {
	if status == 0 {
		return "transport-error"
	}
	return fmt.Sprint(status)
}

// pctMs reads the p-th percentile, in milliseconds, from an ascending-sorted
// latency slice (nearest-rank on the lower side, matching the old report).
func pctMs(sorted []time.Duration, p float64) float64 {
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds()) / 1000
}

func buildReport(results []result, elapsed time.Duration, concurrency, distinct int) loadReport {
	rep := loadReport{
		Requests:        len(results),
		Distinct:        distinct,
		Concurrency:     concurrency,
		ElapsedSec:      elapsed.Seconds(),
		Throughput:      float64(len(results)) / elapsed.Seconds(),
		ByStatus:        map[string]int{},
		LatencyByStatus: map[string]statusLatency{},
	}
	perStatus := map[string][]time.Duration{}
	for _, r := range results {
		key := statusKey(r.status)
		rep.ByStatus[key]++
		perStatus[key] = append(perStatus[key], r.latency)
		if r.status != http.StatusOK {
			rep.Errors++
		}
	}
	rep.ErrorRate = float64(rep.Errors) / float64(len(results))
	for key, lats := range perStatus {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.LatencyByStatus[key] = statusLatency{
			Count: len(lats),
			P50Ms: pctMs(lats, 0.50),
			P99Ms: pctMs(lats, 0.99),
			MaxMs: pctMs(lats, 1),
		}
	}
	if ok := perStatus[statusKey(http.StatusOK)]; len(ok) > 0 {
		rep.P50Ms, rep.P90Ms, rep.P99Ms = pctMs(ok, 0.50), pctMs(ok, 0.90), pctMs(ok, 0.99)
		rep.MaxMs = pctMs(ok, 1)
	}
	return rep
}

func printReport(rep loadReport, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("pcload: %d requests (%d distinct) from %d workers in %.2fs\n",
		rep.Requests, rep.Distinct, rep.Concurrency, rep.ElapsedSec)
	fmt.Printf("  throughput  %.1f req/s\n", rep.Throughput)
	fmt.Printf("  errors      %d (%.2f%%)\n", rep.Errors, 100*rep.ErrorRate)
	statuses := make([]string, 0, len(rep.ByStatus))
	for status := range rep.ByStatus {
		statuses = append(statuses, status)
	}
	sort.Strings(statuses)
	for _, status := range statuses {
		l := rep.LatencyByStatus[status]
		fmt.Printf("    %-16s %-6d p50 %.2fms  p99 %.2fms  max %.2fms\n",
			status, l.Count, l.P50Ms, l.P99Ms, l.MaxMs)
	}
	fmt.Printf("  latency     p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
}
