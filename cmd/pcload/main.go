// Command pcload is a closed-loop load generator for pcserve or pcfront.
//
// A fixed set of workers issues schedule requests back-to-back (each worker
// sends its next request only after the previous one completes — a closed
// loop, so offered load adapts to service capacity instead of overrunning
// it).  Requests are drawn from a seeded pool of distinct instances; the
// duplicate ratio controls how often the generator re-sends an instance it
// has already sent, exercising the server's response cache and request
// coalescing the way real duplicate-heavy traffic does.
//
// Usage:
//
//	pcload -url http://localhost:8080 -c 8 -n 500
//	pcload -c 16 -n 2000 -dup 0.75 -strategy lp-optimal -disks 2
//	pcload -seed 7 -json
//
// The report gives throughput, error counts by status, and the latency
// distribution (p50/p90/p99/max) over successful requests.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pfcache/internal/service"
)

func main() { os.Exit(run()) }

type result struct {
	status  int // 0 = transport error
	latency time.Duration
}

func run() int {
	url := flag.String("url", "http://localhost:8080", "pcserve or pcfront base URL")
	concurrency := flag.Int("c", 8, "number of closed-loop workers")
	total := flag.Int("n", 500, "total requests to send")
	dup := flag.Float64("dup", 0.5, "fraction of requests duplicating an earlier instance (0..1)")
	strategy := flag.String("strategy", "aggressive", "schedule strategy for every request")
	blocks := flag.Int("blocks", 12, "distinct blocks per generated workload")
	reqs := flag.Int("reqs", 48, "requests per generated workload")
	k := flag.Int("k", 6, "cache size k of generated instances")
	f := flag.Int("f", 4, "fetch time F of generated instances")
	disks := flag.Int("disks", 1, "disks per generated instance")
	seed := flag.Int64("seed", 1, "seed for the instance pool and duplicate pattern")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	if *concurrency < 1 || *total < 1 || *dup < 0 || *dup > 1 {
		fmt.Fprintln(os.Stderr, "pcload: need -c >= 1, -n >= 1 and 0 <= -dup <= 1")
		return 2
	}

	// Distinct-instance pool: a duplicate ratio r over n requests needs
	// about n*(1-r) distinct instances.  Workers then draw uniformly from
	// the pool, so later draws repeat earlier ones at the requested rate.
	distinct := int(float64(*total)*(1-*dup) + 0.5)
	if distinct < 1 {
		distinct = 1
	}
	if distinct > *total {
		distinct = *total
	}
	pool := make([][]byte, distinct)
	for i := range pool {
		body, err := json.Marshal(&service.ScheduleRequest{
			Strategy: *strategy,
			Workload: &service.WorkloadSpec{
				Kind: "zipf", N: *reqs, Blocks: *blocks, S: 1.1,
				Seed: *seed + int64(i),
			},
			K: *k, F: *f, Disks: *disks,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcload:", err)
			return 2
		}
		pool[i] = body
	}

	client := &http.Client{Timeout: *timeout}
	results := make([]result, *total)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(*seed), uint64(w)))
			for {
				i := int(next.Add(1)) - 1
				if i >= *total {
					return
				}
				body := pool[rng.IntN(len(pool))]
				t0 := time.Now()
				resp, err := client.Post(*url+"/v1/schedule", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					results[i] = result{status: 0, latency: lat}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results[i] = result{status: resp.StatusCode, latency: lat}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(results, elapsed, *concurrency, distinct, *jsonOut)
	for _, r := range results {
		if r.status != http.StatusOK {
			return 1
		}
	}
	return 0
}

type loadReport struct {
	Requests    int            `json:"requests"`
	Distinct    int            `json:"distinct_instances"`
	Concurrency int            `json:"concurrency"`
	ElapsedSec  float64        `json:"elapsed_sec"`
	Throughput  float64        `json:"requests_per_sec"`
	Errors      int            `json:"errors"`
	ErrorRate   float64        `json:"error_rate"`
	ByStatus    map[string]int `json:"by_status"`
	P50Ms       float64        `json:"p50_ms"`
	P90Ms       float64        `json:"p90_ms"`
	P99Ms       float64        `json:"p99_ms"`
	MaxMs       float64        `json:"max_ms"`
}

func report(results []result, elapsed time.Duration, concurrency, distinct int, asJSON bool) {
	rep := loadReport{
		Requests:    len(results),
		Distinct:    distinct,
		Concurrency: concurrency,
		ElapsedSec:  elapsed.Seconds(),
		Throughput:  float64(len(results)) / elapsed.Seconds(),
		ByStatus:    map[string]int{},
	}
	var ok []time.Duration
	for _, r := range results {
		key := fmt.Sprint(r.status)
		if r.status == 0 {
			key = "transport-error"
		}
		rep.ByStatus[key]++
		if r.status == http.StatusOK {
			ok = append(ok, r.latency)
		} else {
			rep.Errors++
		}
	}
	rep.ErrorRate = float64(rep.Errors) / float64(len(results))
	if len(ok) > 0 {
		sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(ok)-1))
			return float64(ok[i].Microseconds()) / 1000
		}
		rep.P50Ms, rep.P90Ms, rep.P99Ms = pct(0.50), pct(0.90), pct(0.99)
		rep.MaxMs = float64(ok[len(ok)-1].Microseconds()) / 1000
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		return
	}
	fmt.Printf("pcload: %d requests (%d distinct) from %d workers in %.2fs\n",
		rep.Requests, rep.Distinct, rep.Concurrency, rep.ElapsedSec)
	fmt.Printf("  throughput  %.1f req/s\n", rep.Throughput)
	fmt.Printf("  errors      %d (%.2f%%)\n", rep.Errors, 100*rep.ErrorRate)
	for status, n := range rep.ByStatus {
		fmt.Printf("    %-16s %d\n", status, n)
	}
	fmt.Printf("  latency     p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
}
