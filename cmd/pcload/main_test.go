package main

import (
	"net/http"
	"testing"
	"time"
)

// TestBuildReportPerStatusLatency pins the report math: error counting, the
// per-status latency breakdown, and the headline percentiles computed over
// successful requests only.
func TestBuildReportPerStatusLatency(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	results := []result{
		{status: 200, latency: ms(10)},
		{status: 200, latency: ms(20)},
		{status: 200, latency: ms(30)},
		{status: 200, latency: ms(40)},
		{status: 500, latency: ms(2)},
		{status: 500, latency: ms(4)},
		{status: 0, latency: ms(1000)}, // transport error
	}
	rep := buildReport(results, 2*time.Second, 3, 5)

	if rep.Requests != 7 || rep.Errors != 3 {
		t.Fatalf("requests=%d errors=%d, want 7 and 3", rep.Requests, rep.Errors)
	}
	if got, want := rep.ErrorRate, 3.0/7.0; got != want {
		t.Errorf("error rate %g, want %g", got, want)
	}
	if rep.ByStatus["200"] != 4 || rep.ByStatus["500"] != 2 || rep.ByStatus["transport-error"] != 1 {
		t.Errorf("by_status = %v", rep.ByStatus)
	}

	okLat, ok := rep.LatencyByStatus["200"]
	if !ok || okLat.Count != 4 || okLat.P50Ms != 20 || okLat.MaxMs != 40 {
		t.Errorf("200 latency block = %+v (present=%v), want count 4, p50 20ms, max 40ms", okLat, ok)
	}
	errLat := rep.LatencyByStatus["500"]
	if errLat.Count != 2 || errLat.P50Ms != 2 || errLat.MaxMs != 4 {
		t.Errorf("500 latency block = %+v, want count 2, p50 2ms, max 4ms", errLat)
	}
	if tr := rep.LatencyByStatus["transport-error"]; tr.Count != 1 || tr.MaxMs != 1000 {
		t.Errorf("transport-error latency block = %+v, want count 1, max 1000ms", tr)
	}

	// Headline percentiles must exclude errors: the 1000ms transport error
	// would otherwise dominate MaxMs.
	if rep.MaxMs != 40 || rep.P50Ms != 20 {
		t.Errorf("headline latency p50=%g max=%g, want 20 and 40 (errors excluded)", rep.P50Ms, rep.MaxMs)
	}

	// The gate comparison used by run(): a 3/7 error rate passes a 0.5
	// budget and fails the strict default.
	if !(rep.ErrorRate > 0) {
		t.Error("strict default would not have failed this run")
	}
	if rep.ErrorRate > 0.5 {
		t.Error("a 0.5 budget would wrongly have failed this run")
	}
}

// TestBuildReportAllOK pins the degenerate all-success shape: zero error
// rate and a single latency block.
func TestBuildReportAllOK(t *testing.T) {
	results := []result{
		{status: http.StatusOK, latency: time.Millisecond},
		{status: http.StatusOK, latency: 2 * time.Millisecond},
	}
	rep := buildReport(results, time.Second, 1, 2)
	if rep.Errors != 0 || rep.ErrorRate != 0 {
		t.Fatalf("errors=%d rate=%g, want zero", rep.Errors, rep.ErrorRate)
	}
	if len(rep.LatencyByStatus) != 1 || rep.LatencyByStatus["200"].Count != 2 {
		t.Errorf("latency_by_status = %v, want a single 200 block of 2", rep.LatencyByStatus)
	}
}
