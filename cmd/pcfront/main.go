// Command pcfront runs the fault-tolerant front tier over a fleet of pcserve
// backends.
//
// Schedule requests are routed by consistent-hashing the instance fingerprint
// across the backends — the same instance always lands on the same backend,
// keeping its response cache and warm-started solvers hot — while health
// checks, bounded retries with exponential backoff, and per-backend circuit
// breakers make individual backend failures invisible to clients.  Sweeps fan
// out per-experiment across healthy backends and stream NDJSON result lines
// as each experiment completes.
//
// Usage:
//
//	pcfront -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//	pcfront -addr :8000 -backends ... -attempts 4 -request-timeout 30s
//	pcfront -health-interval 500ms -breaker-threshold 5
//
// Endpoints:
//
//	POST /v1/schedule   route one schedule request to its backend (with retries)
//	POST /v1/sweep      fan experiments out across backends; NDJSON stream
//	GET  /v1/stats      front counters plus per-backend health/breaker state
//	GET  /healthz       liveness probe
//	GET  /readyz        readiness probe (503 when no backend is healthy)
//
// Example (three local backends):
//
//	pcserve -addr :8081 & pcserve -addr :8082 & pcserve -addr :8083 &
//	pcfront -addr :8080 -backends http://localhost:8081,http://localhost:8082,http://localhost:8083
//	curl -s localhost:8080/v1/schedule -d '{
//	  "strategy": "lp-optimal",
//	  "workload": {"kind": "zipf", "n": 64, "blocks": 16, "seed": 1},
//	  "k": 8, "f": 4, "disks": 2
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pfcache/internal/front"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8000", "listen address")
	backends := flag.String("backends", "", "comma-separated pcserve base URLs (required)")
	replicas := flag.Int("replicas", 0, "virtual ring points per backend (0 = default)")
	healthInterval := flag.Duration("health-interval", time.Second, "backend readiness poll period")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failed probes before a backend is unhealthy")
	restoreThreshold := flag.Int("restore-threshold", 2, "consecutive good probes before an unhealthy backend is restored")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "overall deadline per schedule request, across retries")
	attemptTimeout := flag.Duration("attempt-timeout", 5*time.Second, "deadline per single backend attempt")
	attempts := flag.Int("attempts", 0, "max attempts per request across backends (0 = one per backend, min 3)")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "base backoff between retries (doubles per retry, jittered)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures before a backend's circuit opens")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-circuit interval before a half-open probe")
	sweepTimeout := flag.Duration("sweep-timeout", 10*time.Minute, "overall deadline per fanned-out sweep")
	statsTimeout := flag.Duration("stats-timeout", 2*time.Second, "deadline per backend /v1/stats fetch during aggregation")
	flag.Parse()

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "pcfront: -backends is required (comma-separated pcserve URLs)")
		return 2
	}

	f, err := front.New(front.Options{
		Backends:         urls,
		Replicas:         *replicas,
		HealthInterval:   *healthInterval,
		FailThreshold:    *failThreshold,
		RestoreThreshold: *restoreThreshold,
		RequestTimeout:   *requestTimeout,
		AttemptTimeout:   *attemptTimeout,
		MaxAttempts:      *attempts,
		RetryBaseDelay:   *retryBase,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		SweepTimeout:     *sweepTimeout,
		StatsTimeout:     *statsTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer f.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           f,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("pcfront listening on %s over %d backends", *addr, len(urls))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Print(err)
			return 1
		}
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Print(err)
			return 1
		}
	}
	return 0
}
