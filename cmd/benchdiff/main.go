// Command benchdiff compares two pcbench -json trajectory files and fails on
// unexplained changes to the experiment tables.
//
// Usage:
//
//	benchdiff BASELINE.json CURRENT.json
//
// The comparison encodes the repository's bench-regression policy:
//
//   - Every experiment of the baseline must still exist.
//   - Every baseline column must still exist (new columns may be added).
//   - Every baseline row must appear in the current table, in order, with
//     identical values in every *schedule-value* column.  Engine-effort
//     columns (state expansions, pivot/iteration counts, refactorization and
//     warm-start counters, wall times) may change: they track how hard the
//     solvers worked, not what the algorithms computed, and they
//     legitimately move when engines improve.
//   - The top-level lp/opt counter blocks and the timings block (wall-clock
//     ns/op figures recorded by scripts/bench.sh) are informational and
//     never compared — timings exist to make the perf trajectory readable,
//     not to gate it.
//
// Exit status: 0 when the baseline is preserved, 1 on a regression, 2 on
// usage or parse errors.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"

	"pfcache/internal/service"
)

// mutableColumn matches headers whose values measure engine effort rather
// than schedule values.  "astar expanded" / "dijkstra expanded" (E7) are the
// current instances; pivot/iteration, refactorization, LU-fill, warm-start
// and wall-time names are reserved so future tables can surface simplex
// effort counters without freezing them into the baseline.
var mutableColumn = regexp.MustCompile(`(?i)expanded|generated|pruned|pivots|iterations|states|seconds|refactor|warm.?start|lu.?fill|eta.?col|symbolic|batch`)

func main() { os.Exit(run()) }

func run() int {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff BASELINE.json CURRENT.json")
		return 2
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	failures := compare(base, cur)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "REGRESSION:", f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s\n", len(failures), os.Args[1])
		return 1
	}
	fmt.Printf("benchdiff OK: every baseline row of %s is preserved in %s\n", os.Args[1], os.Args[2])
	return 0
}

func load(path string) (*service.SweepResponse, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out service.SweepResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &out, nil
}

// compare returns one message per violated policy rule.
func compare(base, cur *service.SweepResponse) []string {
	var failures []string
	curByID := make(map[string]*service.TableWire, len(cur.Results))
	for i := range cur.Results {
		curByID[cur.Results[i].ID] = &cur.Results[i]
	}
	for i := range base.Results {
		bt := &base.Results[i]
		ct, ok := curByID[bt.ID]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: experiment missing from current run", bt.ID))
			continue
		}
		failures = append(failures, compareTable(bt, ct)...)
	}
	return failures
}

func compareTable(base, cur *service.TableWire) []string {
	var failures []string

	// Map each immutable baseline column to its position in the current
	// headers; renamed or dropped columns are regressions.
	type column struct {
		name      string
		baseIdx   int
		curIdx    int
		immutable bool
	}
	curIdx := make(map[string]int, len(cur.Headers))
	for i, h := range cur.Headers {
		curIdx[h] = i
	}
	var cols []column
	for i, h := range base.Headers {
		j, ok := curIdx[h]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: column %q disappeared", base.ID, h))
			continue
		}
		cols = append(cols, column{name: h, baseIdx: i, curIdx: j, immutable: !mutableColumn.MatchString(h)})
	}
	if len(failures) > 0 {
		return failures
	}

	// Project a row onto the immutable baseline columns.
	project := func(row []string, useCur bool) string {
		var b strings.Builder
		for _, c := range cols {
			if !c.immutable {
				continue
			}
			idx := c.baseIdx
			if useCur {
				idx = c.curIdx
			}
			if idx >= len(row) {
				b.WriteString("\x00<short row>")
				continue
			}
			b.WriteString(row[idx])
			b.WriteByte('\x00')
		}
		return b.String()
	}

	// Every baseline row must appear in the current rows as an in-order
	// subsequence: rows may be added between historical ones, but no
	// historical row may change a schedule value, vanish, or be reordered.
	next := 0
	for ri, brow := range base.Rows {
		want := project(brow, false)
		found := -1
		for j := next; j < len(cur.Rows); j++ {
			if project(cur.Rows[j], true) == want {
				found = j
				break
			}
		}
		if found < 0 {
			failures = append(failures, fmt.Sprintf(
				"%s row %d (%s): no matching row in current output (schedule values changed, row removed, or rows reordered)",
				base.ID, ri, strings.Join(brow, " | ")))
			continue
		}
		next = found + 1
	}
	return failures
}
