// Command pcopt computes optimal (or certified lower-bound) stall times for
// an instance read from standard input.
//
// Usage:
//
//	pcgen -n 12 -blocks 6 -k 3 -f 2 -disks 2 | pcopt -method exhaustive
//	pcgen -n 40 -blocks 10 -k 4 -f 3 -disks 2 | pcopt -method lp
//
// The exhaustive method is exact but exponential (small instances only); the
// lp method runs the Theorem 4 pipeline of the paper and reports both the
// fractional lower bound and the extracted schedule's stall time.
package main

import (
	"flag"
	"fmt"
	"os"

	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/workload"
)

func main() {
	method := flag.String("method", "exhaustive", "method: exhaustive or lp")
	extra := flag.Int("extra", 0, "extra cache locations (exhaustive method)")
	showSchedule := flag.Bool("schedule", false, "print the optimal schedule")
	flag.Parse()

	in, err := workload.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *method {
	case "exhaustive":
		res, err := opt.Optimal(in, opt.Options{ExtraCache: *extra})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("instance: %v\n", in)
		fmt.Printf("optimal stall time: %d\n", res.Stall)
		fmt.Printf("optimal elapsed time: %d\n", res.Elapsed)
		fmt.Printf("states expanded: %d\n", res.StatesExpanded)
		if *showSchedule {
			fmt.Println("schedule:")
			fmt.Println(res.Schedule)
		}
	case "lp":
		res, err := lpmodel.Plan(in, lp.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("instance: %v\n", in)
		fmt.Printf("LP lower bound on stall time: %.3f\n", res.LowerBound)
		fmt.Printf("extracted schedule stall time: %d\n", res.Stall)
		fmt.Printf("extra cache locations used: %d (budget 2(D-1) = %d)\n", res.ExtraCache, 2*(in.Disks-1))
		fmt.Printf("LP size: %d variables, %d constraints, %d pivots\n",
			res.LPVariables, res.LPConstraints, res.LPIterations)
		if *showSchedule {
			fmt.Println("schedule:")
			fmt.Println(res.Schedule)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}
}
