// Command pcopt computes optimal (or certified lower-bound) stall times for
// an instance read from standard input.
//
// Usage:
//
//	pcgen -n 12 -blocks 6 -k 3 -f 2 -disks 2 | pcopt -method exhaustive
//	pcgen -n 24 -blocks 10 -k 4 -f 4 -disks 2 | pcopt -bound none -full
//	pcgen -n 40 -blocks 16 -k 4 -f 6 -disks 3 | pcopt -workers 4
//	pcgen -n 40 -blocks 10 -k 4 -f 3 -disks 2 | pcopt -method lp
//
// The exhaustive method runs the A*/branch-and-bound search of internal/opt
// (exact but exponential in the worst case); -bound, -full, -max-states,
// -dijkstra, -no-landmarks, -no-dominance and -workers expose the engine's
// knobs, and the search counters are printed after the result.  The lp method
// runs the Theorem 4 pipeline of the paper and reports both the fractional
// lower bound and the extracted schedule's stall time.
package main

import (
	"flag"
	"fmt"
	"os"

	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/workload"
)

func main() {
	method := flag.String("method", "exhaustive", "method: exhaustive or lp")
	extra := flag.Int("extra-cache", 0, "extra cache locations beyond k (exhaustive method)")
	extraOld := flag.Int("extra", 0, "deprecated alias for -extra-cache")
	full := flag.Bool("full", false, "full branching over every missing block and eviction victim (validates the pruned mode on small instances)")
	maxStates := flag.Int("max-states", 0, fmt.Sprintf("state budget of the search (0 = default %d)", opt.DefaultMaxStates))
	bound := flag.String("bound", "greedy", "branch-and-bound incumbent seeding: greedy or none")
	dijkstra := flag.Bool("dijkstra", false, "disable the A* heuristic (uniform-cost order; with -bound none this is the blind reference search)")
	noLandmarks := flag.Bool("no-landmarks", false, "disable the precomputed landmark lower bounds (A* keeps the per-state matching bound)")
	noDominance := flag.Bool("no-dominance", false, "disable canonicalized dominance merging (duplicates are detected by raw key only)")
	optWorkers := flag.Int("workers", 1, "parallel search workers (1 = sequential; >1 shards the open list across goroutines)")
	showSchedule := flag.Bool("schedule", false, "print the optimal schedule")
	flag.Parse()

	in, err := workload.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *method {
	case "exhaustive":
		boundMode, err := opt.ParseBound(*bound)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *extra == 0 {
			*extra = *extraOld
		}
		res, err := opt.Optimal(in, opt.Options{
			ExtraCache:  *extra,
			Full:        *full,
			MaxStates:   *maxStates,
			Bound:       boundMode,
			NoHeuristic: *dijkstra,
			NoLandmarks: *noLandmarks,
			NoDominance: *noDominance,
			Workers:     *optWorkers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("instance: %v\n", in)
		fmt.Printf("optimal stall time: %d\n", res.Stall)
		fmt.Printf("optimal elapsed time: %d\n", res.Elapsed)
		fmt.Printf("states expanded: %d\n", res.StatesExpanded)
		fmt.Printf("states generated: %d\n", res.StatesGenerated)
		fmt.Printf("pruned by bound: %d\n", res.PrunedByBound)
		fmt.Printf("duplicate hits: %d\n", res.DuplicateHits)
		fmt.Printf("pruned by dominance: %d\n", res.PrunedByDominance)
		fmt.Printf("landmark hits: %d\n", res.LandmarkHits)
		fmt.Printf("peak table size: %d\n", res.PeakTableSize)
		if len(res.WorkerExpanded) > 0 {
			fmt.Printf("workers: %d, per-worker expansions: %v\n", res.Workers, res.WorkerExpanded)
		}
		if res.SeedStall >= 0 {
			status := "beaten by the search"
			if res.SeedOptimal {
				status = "proved optimal"
			}
			fmt.Printf("incumbent seed: %s, stall %d (%s)\n", res.SeedAlgorithm, res.SeedStall, status)
		} else {
			fmt.Printf("incumbent seed: none\n")
		}
		if *showSchedule {
			fmt.Println("schedule:")
			fmt.Println(res.Schedule)
		}
	case "lp":
		res, err := lpmodel.Plan(in, lp.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("instance: %v\n", in)
		fmt.Printf("LP lower bound on stall time: %.3f\n", res.LowerBound)
		fmt.Printf("extracted schedule stall time: %d\n", res.Stall)
		fmt.Printf("extra cache locations used: %d (budget 2(D-1) = %d)\n", res.ExtraCache, 2*(in.Disks-1))
		fmt.Printf("LP size: %d variables, %d constraints, %d pivots\n",
			res.LPVariables, res.LPConstraints, res.LPIterations)
		if *showSchedule {
			fmt.Println("schedule:")
			fmt.Println(res.Schedule)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}
}
