// Command pcserve runs the sharded sweep service: an HTTP/JSON front end for
// the prefetching/caching algorithms and the experiment suite.
//
// Usage:
//
//	pcserve                      # serve on :8080 with one shard per CPU
//	pcserve -addr :9090          # serve on another address
//	pcserve -shards 4 -cache 256 # 4 worker shards, 256-entry result cache
//	pcserve -queue 128           # shed with 503 beyond 128 queued per shard
//	pcserve -timeout 30s         # fail schedule computations with 504 past 30s
//	pcserve -solver flat         # solve schedule-request LPs on the flat path
//	pcserve -drain 15s           # advertise not-ready for 15s before shutdown
//
// Endpoints:
//
//	POST /v1/schedule   compute one schedule (see service.ScheduleRequest)
//	POST /v1/sweep      run named experiments; output matches `pcbench -json`
//	GET  /v1/experiments  list experiment identifiers and titles
//	GET  /v1/stats      cache/shard/robustness counters
//	GET  /healthz       liveness probe (200 while the process runs, even draining)
//	GET  /readyz        readiness probe (503 while draining; steer traffic away)
//
// On SIGINT/SIGTERM the server drains before exiting: /readyz flips to 503
// immediately so load balancers (and pcfront's health checker) stop sending
// new work, the -drain interval passes, then in-flight requests get a
// 10-second graceful shutdown.
//
// Example:
//
//	curl -s localhost:8080/v1/schedule -d '{
//	  "strategy": "aggressive",
//	  "workload": {"kind": "zipf", "n": 64, "blocks": 16, "seed": 1},
//	  "k": 8, "f": 4
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pfcache/internal/lp"
	"pfcache/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "number of worker shards (0 = one per CPU)")
	queue := flag.Int("queue", 0, "per-shard queue depth before requests shed with 503 (0 = default)")
	cacheEntries := flag.Int("cache", 1024, "schedule result cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 0, "server-side deadline per schedule computation, 504 beyond it (0 = none)")
	workers := flag.Int("workers", 0, "experiment pool size for sweeps (0 = one per CPU)")
	solver := flag.String("solver", "revised", "LP simplex implementation: revised or flat")
	pricing := flag.String("pricing", "steepest-edge", "revised-simplex pricing rule for schedule requests: steepest-edge or dantzig")
	basis := flag.String("basis", "lu", "revised-simplex basis representation for schedule requests: lu or eta")
	drain := flag.Duration("drain", 2*time.Second, "not-ready interval between the shutdown signal and closing the listener")
	flag.Parse()

	method, err := lp.ParseMethod(*solver)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pricingRule, err := lp.ParsePricing(*pricing)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	basisMethod, err := lp.ParseBasis(*basis)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	srv := service.NewServer(service.Options{
		Shards:          *shards,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		ScheduleTimeout: *timeout,
		Solver:          method,
		Pricing:         pricingRule,
		Basis:           basisMethod,
		Workers:         *workers,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Slow-client bounds: a peer that trickles its headers or parks an
		// idle connection cannot pin a goroutine forever.  Write timeouts
		// stay unset — sweeps legitimately stream for minutes.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("pcserve listening on %s (shards=%d cache=%d solver=%s)",
		*addr, srv.Stats().Shards, *cacheEntries, method)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Print(err)
			return 1
		}
	case sig := <-sigc:
		// Drain first: readiness flips to 503 while the listener stays open,
		// so health checkers route traffic away before connections die.
		log.Printf("received %v, draining for %v before shutdown", sig, *drain)
		srv.BeginDrain()
		time.Sleep(*drain)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Print(err)
			return 1
		}
	}
	return 0
}
