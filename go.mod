module pfcache

go 1.24
