#!/usr/bin/env bash
# Bench-regression guard: regenerates the stable experiment JSON and diffs
# its tables against EVERY committed BENCH_*.json trajectory point (a PR
# that records a new point would otherwise be compared only against itself).
# Fails on unexplained row changes — engine-effort columns (expansions,
# pivots) may move and new columns/rows may appear, but historical schedule
# values may not change (see cmd/benchdiff for the exact policy).
#
# Usage: scripts/benchdiff.sh [baseline.json ...]   (default: all BENCH_N.json)
set -euo pipefail
cd "$(dirname "$0")/.."

baselines=("$@")
if [ ${#baselines[@]} -eq 0 ]; then
	mapfile -t baselines < <(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
	if [ ${#baselines[@]} -eq 0 ]; then
		echo "benchdiff: no committed BENCH_*.json baseline found" >&2
		exit 2
	fi
fi

current=$(mktemp /tmp/benchdiff.XXXXXX.json)
trap 'rm -f "$current"' EXIT
echo "regenerating experiment tables (sequential, stable) ..."
go run ./cmd/pcbench -json -stable -workers 1 > "$current"
go build -o /tmp/benchdiff-bin ./cmd/benchdiff
status=0
for baseline in "${baselines[@]}"; do
	/tmp/benchdiff-bin "$baseline" "$current" || status=1
done
exit $status
