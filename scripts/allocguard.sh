#!/usr/bin/env bash
# Allocation-regression guard for the hot paths:
#
#  * The pooled LP solve paths (reused Solver, see BenchmarkLPSolveRevised /
#    BenchmarkLPSolveFlat) must stay O(1) allocs per solve — that property is
#    what keeps the E7/E8 sweeps allocation-free in steady state.
#  * The revised solver's inner engines (internal/lp's
#    BenchmarkRevisedSolve{,SteepestEdge,DantzigEta,Verified}E7Size) must
#    keep their working state — steepest-edge weight arrays, the sparse
#    pivot-row accumulator, and the LU factorization workspace — on the
#    reusable Solver: a cold solve on warmed buffers allocates only the
#    Solution, its X vector and the certificate's dual copy, so the same
#    MAX_ALLOCS bound applies.  The Verified variant runs the full cascade
#    path (Options.Cascade plus certificate checking) to guarantee
#    verification never adds per-solve allocations beyond that copy.
#  * The batched LP paths must hold their amortization promises:
#    BenchmarkBatchSolveE7Size (internal/lp) runs the twelve-solve E7 warm
#    sweep through one lp.Batch, where steady state is two allocations per
#    solve (the Solution and its X vector — everything else lives in batch
#    arenas), so the op-level bound is 24; BenchmarkModelBatchBuild (root)
#    rebuilds two E7-sized models per op through lpmodel.BuildInto, whose
#    remaining allocations are the per-instance block index plus map/closure
#    small change, bounded at 64 per op.
#  * The incremental solve path (internal/lpmodel's
#    BenchmarkModelExtendResolve: one appended request, one warm dual
#    re-solve) allocates O(rows added by the extension) — growth appends on
#    the Problem arenas plus the re-solve's Solution — a small constant
#    (~270) on the E7-sized workload.  A regression to rebuilding or
#    re-factorizing per step would scale with the whole program (tens of
#    thousands), so the 512 bound has margin without masking one.
#  * The exact-search engine (BenchmarkOptSearchAStar*, plus the Landmark
#    variant) must keep its flat arena + open-addressing memory layer: its
#    allocs/op on a fixed instance is a small constant (seed schedules, arena
#    growth doublings, the landmark table), while a regression to per-node
#    allocation would scale with the ~50k states of the E7-sized search and
#    blow far past the limit.
#  * The parallel driver (BenchmarkOptSearchParallelE7Size) adds a fixed
#    per-search footprint on top: shard mutexes, per-worker arenas and bucket
#    queues.  That footprint is a few hundred allocations regardless of how
#    many states the search expands; the separate MAX_PAR_ALLOCS bound keeps
#    it from regressing to per-node or per-steal allocation.
#
# Runs the benchmarks once (-benchtime 1x; the LP ones warm the solver up
# before the timer) and fails if allocs/op exceeds the per-group limits.
set -euo pipefail
cd "$(dirname "$0")/.."
MAX_ALLOCS="${MAX_ALLOCS:-8}"
MAX_OPT_ALLOCS="${MAX_OPT_ALLOCS:-2000}"
MAX_PAR_ALLOCS="${MAX_PAR_ALLOCS:-4000}"
MAX_BATCH_ALLOCS="${MAX_BATCH_ALLOCS:-24}"
MAX_BATCH_BUILD_ALLOCS="${MAX_BATCH_BUILD_ALLOCS:-64}"
MAX_EXTEND_ALLOCS="${MAX_EXTEND_ALLOCS:-512}"
out=$(go test -run '^$' -bench 'BenchmarkLPSolve(Revised|Flat)$|BenchmarkOptSearch(AStar|Landmark|Parallel)|BenchmarkModelBatchBuild$' -benchmem -benchtime 1x .)
lpout=$(go test -run '^$' -bench 'BenchmarkRevisedSolve(SteepestEdge|DantzigEta|Verified)?E7Size$|BenchmarkBatchSolveE7Size$' -benchmem -benchtime 1x ./internal/lp)
extout=$(go test -run '^$' -bench 'BenchmarkModelExtendResolve$' -benchmem -benchtime 16x ./internal/lpmodel)
out=$(printf '%s\n%s\n%s' "$out" "$lpout" "$extout")
echo "$out"
echo "$out" | awk -v max="$MAX_ALLOCS" -v optmax="$MAX_OPT_ALLOCS" \
	-v batchmax="$MAX_BATCH_ALLOCS" -v batchbuildmax="$MAX_BATCH_BUILD_ALLOCS" \
	-v extendmax="$MAX_EXTEND_ALLOCS" -v parmax="$MAX_PAR_ALLOCS" '
	/^BenchmarkLPSolve|^BenchmarkRevisedSolve/ {
		allocs = $(NF-1)
		if (allocs + 0 > max + 0) {
			printf "FAIL: %s allocates %s allocs/op (max %s)\n", $1, allocs, max
			bad = 1
		}
	}
	/^BenchmarkBatchSolve/ {
		allocs = $(NF-1)
		if (allocs + 0 > batchmax + 0) {
			printf "FAIL: %s allocates %s allocs/op (max %s)\n", $1, allocs, batchmax
			bad = 1
		}
	}
	/^BenchmarkModelBatchBuild/ {
		allocs = $(NF-1)
		if (allocs + 0 > batchbuildmax + 0) {
			printf "FAIL: %s allocates %s allocs/op (max %s)\n", $1, allocs, batchbuildmax
			bad = 1
		}
	}
	/^BenchmarkModelExtendResolve/ {
		allocs = $(NF-1)
		if (allocs + 0 > extendmax + 0) {
			printf "FAIL: %s allocates %s allocs/op (max %s)\n", $1, allocs, extendmax
			bad = 1
		}
	}
	/^BenchmarkOptSearchAStar|^BenchmarkOptSearchLandmark/ {
		allocs = $(NF-1)
		if (allocs + 0 > optmax + 0) {
			printf "FAIL: %s allocates %s allocs/op (max %s)\n", $1, allocs, optmax
			bad = 1
		}
	}
	/^BenchmarkOptSearchParallel/ {
		allocs = $(NF-1)
		if (allocs + 0 > parmax + 0) {
			printf "FAIL: %s allocates %s allocs/op (max %s)\n", $1, allocs, parmax
			bad = 1
		}
	}
	END {
		if (!bad) printf "alloc guard OK (LP max %s, batch max %s/%s, extend max %s, opt max %s, parallel max %s allocs/op)\n", max, batchmax, batchbuildmax, extendmax, optmax, parmax
		exit bad
	}'
