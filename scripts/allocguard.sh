#!/usr/bin/env bash
# Allocation-regression guard: the pooled LP solve paths (reused Solver, see
# BenchmarkLPSolveRevised / BenchmarkLPSolveFlat) must stay O(1) allocs per
# solve — that property is what keeps the E7/E8 sweeps allocation-free in
# steady state.  Runs the benchmarks once (-benchtime 1x; they warm the
# solver up before the timer) and fails if allocs/op exceeds MAX_ALLOCS.
set -euo pipefail
cd "$(dirname "$0")/.."
MAX_ALLOCS="${MAX_ALLOCS:-8}"
out=$(go test -run '^$' -bench 'BenchmarkLPSolve(Revised|Flat)$' -benchmem -benchtime 1x .)
echo "$out"
echo "$out" | awk -v max="$MAX_ALLOCS" '
	/^BenchmarkLPSolve/ {
		allocs = $(NF-1)
		if (allocs + 0 > max + 0) {
			printf "FAIL: %s allocates %s allocs/op (max %s)\n", $1, allocs, max
			bad = 1
		}
	}
	END {
		if (!bad) printf "alloc guard OK (max %s allocs/op)\n", max
		exit bad
	}'
