#!/usr/bin/env bash
# Regenerates the perf-trajectory point for the current revision: the full
# experiment suite as machine-readable JSON, run sequentially (-workers 1)
# and without wall times (-stable) so the output is byte-reproducible.
#
# Usage: scripts/bench.sh [output-file]     (default BENCH_1.json)
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"
go run ./cmd/pcbench -json -stable -workers 1 > "$out"
echo "wrote $out"
