#!/usr/bin/env bash
# Regenerates the perf-trajectory point for the current revision: the full
# experiment suite as machine-readable JSON, run sequentially (-workers 1)
# and without wall times (-stable) so the output is byte-reproducible.
#
# Usage: scripts/bench.sh [output-file]
#
# Without an argument the output goes to the next unused BENCH_N.json, so a
# new PR appends a trajectory point instead of silently overwriting the
# oldest one.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-}"
if [ -z "$out" ]; then
	n=1
	while [ -e "BENCH_${n}.json" ]; do
		n=$((n + 1))
	done
	out="BENCH_${n}.json"
fi
go run ./cmd/pcbench -json -stable -workers 1 > "$out"
echo "wrote $out"
