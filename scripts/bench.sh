#!/usr/bin/env bash
# Regenerates the perf-trajectory point for the current revision: the full
# experiment suite as machine-readable JSON, run sequentially (-workers 1)
# and without wall times (-stable) so the tables are byte-reproducible, plus
# a `timings` block of wall-clock ns/op figures for the solver and search
# benchmarks (BenchmarkRevisedSolve*, BenchmarkBatchSolve*,
# BenchmarkModelBatch*, BenchmarkOptSearch*) plus the incremental-path pairs
# (BenchmarkDualResolve*, BenchmarkModelExtendResolve/BenchmarkModelColdResolve,
# BenchmarkReplayIncrementalStep/BenchmarkReplayColdStep — the last pair's
# ratio is the trace-replay speedup pcbench -replay reports) so the perf
# trajectory is tracked alongside the counters.  Timings are informational:
# cmd/benchdiff never compares them.
#
# Usage: scripts/bench.sh [output-file]
#
# Without an argument the output goes to the next unused BENCH_N.json, so a
# new PR appends a trajectory point instead of silently overwriting the
# oldest one.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-}"
if [ -z "$out" ]; then
	n=1
	while [ -e "BENCH_${n}.json" ]; do
		n=$((n + 1))
	done
	out="BENCH_${n}.json"
fi
bench=$(mktemp /tmp/bench-timings.XXXXXX)
trap 'rm -f "$bench"' EXIT
echo "running solver/search benchmarks for the timings block ..."
go test -run '^$' -bench 'BenchmarkRevisedSolve|BenchmarkBatchSolve|BenchmarkModelBatch|BenchmarkOptSearch|BenchmarkDualResolve|BenchmarkModelExtendResolve|BenchmarkModelColdResolve|BenchmarkReplay' ./... > "$bench"
go run ./cmd/pcbench -json -stable -workers 1 -timings "$bench" > "$out"
echo "wrote $out"
