// Adversarial construction: reproduce Theorem 2, the lower bound on the
// approximation ratio of the Aggressive algorithm.
//
// The phase construction of Theorem 2 tricks Aggressive into fetching the
// current phase's new blocks too early, forcing it to evict a block (a1) that
// it must immediately re-load at a cost of F-1 stall units per phase, while
// the optimum waits one request and evicts only the previous phase's dead
// blocks.  As the number of phases grows the measured ratio approaches
// 1 + F/(k + (k-1)/(F-1)).
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"pfcache/internal/sim"
	"pfcache/internal/single"
	"pfcache/internal/workload"
)

func main() {
	const k, f = 7, 4
	l := (k - 1) / (f - 1)
	// The per-phase ratio of the construction is (k+l+F)/(k+l+2), which for
	// growing k and F approaches the Theorem 2 bound 1 + F/(k + (k-1)/(F-1)).
	phaseAsymptote := float64(k+l+f) / float64(k+l+2)
	fmt.Printf("k=%d, F=%d: per-phase asymptote = %.4f, Theorem 2 bound (k,F large) = %.4f, Theorem 1 bound = %.4f\n\n",
		k, f, phaseAsymptote, single.AggressiveLowerBound(k, f), single.AggressiveUpperBound(k, f))
	fmt.Printf("%8s  %10s  %10s  %8s\n", "phases", "aggressive", "optimal*", "ratio")
	for _, phases := range []int{1, 2, 4, 8, 16, 32, 64} {
		in, err := workload.AggressiveAdversary(k, f, phases)
		if err != nil {
			log.Fatal(err)
		}
		agg, err := single.Aggressive(in)
		if err != nil {
			log.Fatal(err)
		}
		ares, err := sim.Run(in, agg, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cons, err := single.Conservative(in)
		if err != nil {
			log.Fatal(err)
		}
		cres, err := sim.Run(in, cons, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %10d  %10d  %8.4f\n",
			phases, ares.Elapsed, cres.Elapsed, float64(ares.Elapsed)/float64(cres.Elapsed))
	}
	fmt.Println("\n* optimal behaviour on this instance is realised by Conservative")
	fmt.Println("  (it evicts only the previous phase's blocks, as in the Theorem 2 analysis).")
}
