// Delay sweep: reproduce the sqrt(3) phenomenon of Theorem 3 / Corollary 1.
//
// The Delay(d) family bridges Aggressive (d = 0) and Conservative (d large).
// This example sweeps d, prints the analytic approximation bound
// max{(d+F)/F, (d+2F)/(d+F), 3(d+F)/(d+2F)} next to the measured worst-case
// elapsed-time ratio on random workloads, and marks the analytically best
// delay d0 = floor((sqrt(3)-1)/2 * F).
//
// Run with:
//
//	go run ./examples/delaysweep
package main

import (
	"fmt"
	"log"

	"pfcache/internal/core"
	"pfcache/internal/opt"
	"pfcache/internal/sim"
	"pfcache/internal/single"
	"pfcache/internal/workload"
)

func main() {
	const k, f = 4, 8
	d0 := single.BestDelay(f)
	fmt.Printf("cache k=%d, fetch time F=%d, analytic best delay d0=%d\n\n", k, f, d0)

	// A small pool of workloads with known optima.
	type inst struct {
		in      *core.Instance
		optimal int
	}
	var pool []inst
	for seed := int64(0); seed < 3; seed++ {
		in := core.SingleDisk(workload.Zipf(18, 7, 1.1, seed), k, f)
		o, err := opt.Optimal(in, opt.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, inst{in: in, optimal: o.Elapsed})
	}

	fmt.Printf("%4s  %12s  %12s\n", "d", "Thm3 bound", "max ratio")
	for d := 0; d <= 2*f; d++ {
		worst := 0.0
		for _, it := range pool {
			sched, err := single.Delay(it.in, d)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(it.in, sched, sim.Options{})
			if err != nil {
				log.Fatal(err)
			}
			ratio := float64(res.Elapsed) / float64(it.optimal)
			if ratio > worst {
				worst = ratio
			}
		}
		marker := ""
		if d == d0 {
			marker = "  <- d0 (bound tends to sqrt(3) = 1.732)"
		}
		fmt.Printf("%4d  %12.3f  %12.3f%s\n", d, single.DelayUpperBound(d, f), worst, marker)
	}
}
