// Quickstart: build a small single-disk instance, run the classical
// integrated prefetching/caching algorithms on it, and compare their stall
// times with the exhaustive optimum.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pfcache/internal/core"
	"pfcache/internal/opt"
	"pfcache/internal/sim"
	"pfcache/internal/single"
)

func main() {
	// The worked example from the paper's introduction: requests to blocks
	// b1 b2 b3 b4 b4 b5 b1 b4 b4 b2, a cache of 4 blocks that initially
	// holds b1..b4, and a fetch time of 4 time units.
	seq, names := core.ParseSequence("b1 b2 b3 b4 b4 b5 b1 b4 b4 b2")
	in := core.SingleDisk(seq, 4, 4).
		WithInitialCache(names["b1"], names["b2"], names["b3"], names["b4"])

	fmt.Println("instance:", in)
	fmt.Println("request sequence:", in.Seq)
	fmt.Println()

	for _, name := range []string{"aggressive", "conservative", "delay:1", "combination", "demand-min"} {
		algo, err := single.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := algo.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(in, sched, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s stall=%d elapsed=%d fetches=%d\n", name, res.Stall, res.Elapsed, res.FetchCount)
	}

	best, err := opt.Optimal(in, opt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s stall=%d elapsed=%d\n", "optimal", best.Stall, best.Elapsed)
	fmt.Println()
	fmt.Println("optimal schedule:")
	fmt.Println(best.Schedule)
}
