// Parallel disks: run the Theorem 4 LP-based algorithm against the greedy
// parallel strategies on a striped multi-disk workload.
//
// The algorithm of Section 3 of the paper computes, in polynomial time, a
// schedule whose stall time is bounded by the optimal stall time while using
// at most 2(D-1) extra cache locations.  This example shows the LP lower
// bound, the stall time of the extracted schedule, and how the greedy
// baselines compare.
//
// Run with:
//
//	go run ./examples/paralleldisk
package main

import (
	"fmt"
	"log"

	"pfcache/internal/parallel"
	"pfcache/internal/sim"
	"pfcache/internal/workload"
)

func main() {
	const (
		disks  = 3
		k      = 5
		f      = 3
		n      = 24
		blocks = 12
	)
	seq := workload.Interleaved(n, disks, blocks/disks)
	in := workload.Instance(seq, k, f, disks, workload.AssignStripe, 1)
	fmt.Println("instance:", in)
	fmt.Println()

	res, err := parallel.LPOptimal(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP lower bound on stall time: %.2f\n", res.LowerBound)
	fmt.Printf("Theorem 4 schedule: stall=%d, extra cache=%d (budget 2(D-1)=%d)\n\n",
		res.Stall, res.ExtraCache, 2*(disks-1))

	for _, a := range parallel.Algorithms() {
		if a.Name == "lp-optimal" {
			continue
		}
		sched, err := a.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run(in, sched, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s stall=%d elapsed=%d\n", a.Name, r.Stall, r.Elapsed)
	}

	fmt.Println("\nTheorem 4 schedule:")
	fmt.Println(res.Schedule)
}
