// Package pfcache's root benchmark harness regenerates every experiment of
// EXPERIMENTS.md as a testing.B benchmark, so that
//
//	go test -bench=. -benchmem
//
// reproduces the paper's results (the per-experiment tables are printed once
// per benchmark) and additionally measures the cost of the main algorithmic
// building blocks.  The BenchmarkLP* group watches the hot path of the
// E7/E8 sweeps (the simplex solver of internal/lp and the model builder of
// internal/lpmodel) and is what the CI allocation guard checks; internal/lp's
// own benchmarks compare the revised simplex against the flat-tableau path
// and the retired dense reference implementation.
package pfcache_test

import (
	"fmt"
	"sync"
	"testing"

	"pfcache/internal/core"
	"pfcache/internal/experiments"
	"pfcache/internal/lp"
	"pfcache/internal/lpmodel"
	"pfcache/internal/opt"
	"pfcache/internal/parallel"
	"pfcache/internal/report"
	"pfcache/internal/sim"
	"pfcache/internal/single"
	"pfcache/internal/workload"
)

// printOnce ensures each experiment table is printed a single time even
// though the benchmark body runs b.N times.
var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *report.Table
	for i := 0; i < b.N; i++ {
		tab, err = exp.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done && tab != nil {
		fmt.Printf("\n%s\n", tab)
	}
}

// Experiment benchmarks: one per table of the experiment index in
// EXPERIMENTS.md.

func BenchmarkE1IntroExample(b *testing.B)            { runExperiment(b, "E1") }
func BenchmarkE2IntroParallelExample(b *testing.B)    { runExperiment(b, "E2") }
func BenchmarkE3AggressiveRatio(b *testing.B)         { runExperiment(b, "E3") }
func BenchmarkE4AggressiveLowerBound(b *testing.B)    { runExperiment(b, "E4") }
func BenchmarkE5DelaySweep(b *testing.B)              { runExperiment(b, "E5") }
func BenchmarkE6Combination(b *testing.B)             { runExperiment(b, "E6") }
func BenchmarkE7ParallelLPOptimal(b *testing.B)       { runExperiment(b, "E7") }
func BenchmarkE8ParallelHeuristics(b *testing.B)      { runExperiment(b, "E8") }
func BenchmarkA1SynchronizationAblation(b *testing.B) { runExperiment(b, "A1") }
func BenchmarkA2EvictionAblation(b *testing.B)        { runExperiment(b, "A2") }

// Component micro-benchmarks: cost of the individual building blocks on a
// medium workload, so regressions in the substrates are visible without
// running the full experiment suite.

func mediumSingleDiskInstance() *core.Instance {
	return core.SingleDisk(workload.Zipf(2000, 128, 1.1, 7), 32, 8)
}

func mediumParallelInstance() *core.Instance {
	seq := workload.Interleaved(600, 3, 24)
	return workload.Instance(seq, 16, 6, 3, workload.AssignStripe, 7)
}

func BenchmarkAlgorithmAggressive(b *testing.B) {
	in := mediumSingleDiskInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := single.Aggressive(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmConservative(b *testing.B) {
	in := mediumSingleDiskInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := single.Conservative(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmDelayBest(b *testing.B) {
	in := mediumSingleDiskInstance()
	d0 := single.BestDelay(in.F)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := single.Delay(in, d0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmParallelAggressive(b *testing.B) {
	in := mediumParallelInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parallel.Aggressive(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleExecutor(b *testing.B) {
	in := mediumSingleDiskInstance()
	sched, err := single.Aggressive(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(in, sched, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveOptimalSmall(b *testing.B) {
	seq := workload.Uniform(14, 7, 3)
	in := workload.Instance(seq, 3, 2, 2, workload.AssignStripe, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimal(in, opt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// The BenchmarkOptSearch* group tracks the exact-search engine of
// internal/opt on the instance sizes of experiment E7: the old size (n=11,
// the pre-rewrite ceiling) and the new size (n=22, D=3, unlocked by the
// A*/branch-and-bound rewrite).  The AStar/Dijkstra pairs keep the informed
// engine comparable with the blind uniform-cost reference; CI's bench smoke
// runs the group and scripts/allocguard.sh bounds the AStar paths' allocs/op.

func optSearchOldSizeInstance() *core.Instance {
	seq := workload.Uniform(11, 6, 900)
	return workload.Instance(seq, 3, 2, 3, workload.AssignStripe, 0)
}

func optSearchE7SizeInstance() *core.Instance {
	seq := workload.Uniform(22, 10, 900)
	return workload.Instance(seq, 4, 4, 3, workload.AssignStripe, 0)
}

func benchOptSearch(b *testing.B, in *core.Instance, opts opt.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimal(in, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptSearchAStarOldSize(b *testing.B) {
	benchOptSearch(b, optSearchOldSizeInstance(), opt.Options{})
}

func BenchmarkOptSearchDijkstraOldSize(b *testing.B) {
	benchOptSearch(b, optSearchOldSizeInstance(), opt.Options{Bound: opt.BoundNone, NoHeuristic: true})
}

func BenchmarkOptSearchAStarE7Size(b *testing.B) {
	benchOptSearch(b, optSearchE7SizeInstance(), opt.Options{})
}

func BenchmarkOptSearchDijkstraE7Size(b *testing.B) {
	benchOptSearch(b, optSearchE7SizeInstance(), opt.Options{Bound: opt.BoundNone, NoHeuristic: true})
}

// BenchmarkOptSearchLandmarkE7Size isolates the landmark layer's cost on the
// E7-sized search: matching bound plus the precomputed landmark table, with
// dominance merging off.  Compare with AStarE7Size (the full engine) for what
// dominance saves and with DijkstraE7Size for what the bounds save.
func BenchmarkOptSearchLandmarkE7Size(b *testing.B) {
	benchOptSearch(b, optSearchE7SizeInstance(), opt.Options{NoDominance: true})
}

// BenchmarkOptSearchParallelE7Size runs the full engine through the sharded
// parallel driver.  On the single-CPU CI runners this mostly measures the
// driver's overhead (shard locks, per-worker arenas and queues) over the
// sequential path; scripts/allocguard.sh bounds its allocs/op so the
// driver's fixed per-search footprint cannot regress to per-node allocation.
func BenchmarkOptSearchParallelE7Size(b *testing.B) {
	benchOptSearch(b, optSearchE7SizeInstance(), opt.Options{Workers: 4})
}

func BenchmarkLPRelaxation(b *testing.B) {
	seq := workload.Uniform(18, 8, 3)
	in := workload.Instance(seq, 4, 3, 2, workload.AssignStripe, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lpmodel.LowerBound(in, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem4Pipeline(b *testing.B) {
	seq := workload.Uniform(16, 7, 5)
	in := workload.Instance(seq, 4, 3, 2, workload.AssignStripe, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lpmodel.Plan(in, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = workload.Zipf(5000, 256, 1.1, int64(i))
	}
}

// e7SizedModel builds the synchronized-schedule LP at the size used by the
// E7 sweep (the hot path motivating the flat solver).
func e7SizedModel(b *testing.B) *lpmodel.Model {
	b.Helper()
	seq := workload.Uniform(11, 6, 900)
	in := workload.Instance(seq, 3, 2, 3, workload.AssignStripe, 0)
	m, err := lpmodel.Build(in)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchLPSolve measures repeated solves of the E7-sized model with a reused
// Solver: the steady-state cost of one simplex solve in the sweeps.  A few
// untimed warm-up solves populate the buffers — the first runs the cold
// path, the rest the warm-started path a re-solved Model takes (the model
// captures its optimal basis, so every subsequent solve replays it; the LU
// workspace keeps growing for a couple of factorizations because each one
// permutes the basis rows) — so even -benchtime 1x (the CI allocation
// guard) reports the steady-state allocs/op.
func benchLPSolve(b *testing.B, opts lp.Options) {
	m := e7SizedModel(b)
	solver := lp.NewSolver()
	for warmup := 0; warmup < 4; warmup++ {
		if _, err := m.SolveWith(solver, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveWith(solver, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPSolveRevised is the production revised-simplex path (the
// default).  Compare with BenchmarkDenseSolveE7Size in internal/lp for the
// pre-refactor dense path.
func BenchmarkLPSolveRevised(b *testing.B) {
	benchLPSolve(b, lp.Options{Method: lp.MethodRevised})
}

// BenchmarkLPSolveFlat is the PR-1 flat-tableau path on the same model.
func BenchmarkLPSolveFlat(b *testing.B) {
	benchLPSolve(b, lp.Options{Method: lp.MethodFlat})
}

// BenchmarkLPModelBuild measures constructing the synchronized-schedule LP
// (variable enumeration plus sparse constraint ingestion) at the E7 size.
func BenchmarkLPModelBuild(b *testing.B) {
	seq := workload.Uniform(11, 6, 900)
	in := workload.Instance(seq, 3, 2, 3, workload.AssignStripe, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lpmodel.Build(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelBatchBuild measures the arena-backed rebuild path behind
// lpmodel.ModelBatch: two E7-sized instances alternately rebuilt into one
// Model with BuildInto, so every iteration performs two full builds (the
// shapes differ, so nothing short-circuits) against converged buffers —
// interval tables, variable maps, constraint scratch and the Problem's
// coefficient arena are all reused.  Compare with BenchmarkLPModelBuild for
// the from-scratch cost of the same builds; scripts/allocguard.sh bounds
// this path's allocs/op.
func BenchmarkModelBatchBuild(b *testing.B) {
	seq1 := workload.Uniform(11, 6, 900)
	in1 := workload.Instance(seq1, 3, 2, 3, workload.AssignStripe, 0)
	seq2 := workload.Uniform(11, 6, 901)
	in2 := workload.Instance(seq2, 3, 2, 3, workload.AssignStripe, 0)
	var m lpmodel.Model
	for warmup := 0; warmup < 4; warmup++ {
		if err := lpmodel.BuildInto(&m, in1); err != nil {
			b.Fatal(err)
		}
		if err := lpmodel.BuildInto(&m, in2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lpmodel.BuildInto(&m, in1); err != nil {
			b.Fatal(err)
		}
		if err := lpmodel.BuildInto(&m, in2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecTrace measures the schedule executor with event tracing
// enabled, the mode the debugging tools and pcsim use.
func BenchmarkExecTrace(b *testing.B) {
	in := mediumSingleDiskInstance()
	sched, err := single.Aggressive(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(in, sched, sim.Options{Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Events) == 0 {
			b.Fatal("trace empty")
		}
	}
}
